//! Sketch dimensioning from the paper's bounds.
//!
//! The analysis fixes the two free parameters as follows.
//!
//! * **Rows** `t = Θ(log(n/δ))` (Lemmas 3–4): each row estimate is within
//!   `8γ` of truth with probability `≥ 5/8`; a Chernoff bound over rows
//!   makes the *median* fail with probability `e^{-Ω(t)}`, and a union
//!   bound over the `n` stream positions gives `t = Θ(log(n/δ))`.
//! * **Buckets** `b ≥ 8·max(k, 32·F₂^{res(k)}/(ε·n_k)²)` (Lemma 5): the
//!   `8k` term makes NO-COLLISIONS (no top-k item in your bucket) hold
//!   with probability `≥ 7/8`; the second term makes `16γ ≤ ε·n_k`, so
//!   estimate error cannot flip the order of items whose counts differ by
//!   `ε·n_k`.
//!
//! The Chernoff constant hidden in `Θ(log(n/δ))` is large; following
//! standard practice for Count-Sketch implementations this module exposes
//! both the conservative theoretical constant and the practical default
//! (`t = ⌈log₂(n/δ)⌉`, odd), and the experiments in `EXPERIMENTS.md`
//! measure how small `t` can actually go.

/// Dimensions of a Count-Sketch: `t` hash tables of `b` counters each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchParams {
    /// Number of rows (hash tables), `t`.
    pub rows: usize,
    /// Number of buckets (counters) per row, `b`.
    pub buckets: usize,
}

impl SketchParams {
    /// Creates explicit dimensions.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, buckets: usize) -> Self {
        assert!(rows > 0, "need at least one row");
        assert!(buckets > 0, "need at least one bucket");
        Self { rows, buckets }
    }

    /// The practical row count `t = ⌈log₂(n/δ)⌉`, rounded up to odd so
    /// the median is a single row value.
    pub fn rows_practical(n: u64, delta: f64) -> usize {
        assert!(n >= 1);
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let t = ((n as f64 / delta).log2()).ceil().max(1.0) as usize;
        t | 1 // force odd
    }

    /// The conservative theoretical row count `t = ⌈32·ln(n/δ)⌉` (odd).
    ///
    /// The 32 comes from the Hoeffding step in Lemma 3: each row is
    /// "good" with probability `5/8`, and the median fails only if fewer
    /// than `t/2` rows are good, so
    /// `P[fail] ≤ exp(-2t(5/8 - 1/2)²) = exp(-t/32)`.
    pub fn rows_conservative(n: u64, delta: f64) -> usize {
        assert!(n >= 1);
        assert!(delta > 0.0 && delta < 1.0);
        let t = (32.0 * (n as f64 / delta).ln()).ceil().max(1.0) as usize;
        t | 1
    }

    /// The bucket count from Lemma 5:
    /// `b ≥ 8·max(k, 32·F₂^{res(k)} / (ε·n_k)²)`.
    ///
    /// `residual_f2` is `Σ_{q' > k} n_{q'}²` and `nk` is the count of the
    /// k-th most frequent item. Returns at least 1.
    ///
    /// # Panics
    /// Panics if `eps <= 0` or `nk == 0`.
    pub fn buckets_for_approx_top(k: usize, residual_f2: f64, nk: u64, eps: f64) -> usize {
        assert!(eps > 0.0, "eps must be positive");
        assert!(nk > 0, "n_k must be positive");
        let collision_term = 8.0 * k as f64;
        let variance_term = 8.0 * 32.0 * residual_f2 / (eps * nk as f64).powi(2);
        collision_term.max(variance_term).ceil().max(1.0) as usize
    }

    /// Full Lemma 5 / Theorem 1 dimensioning for APPROXTOP(S, k, ε) with
    /// failure probability `δ`, using the practical row count.
    pub fn for_approx_top(
        k: usize,
        residual_f2: f64,
        nk: u64,
        eps: f64,
        n: u64,
        delta: f64,
    ) -> Self {
        Self {
            rows: Self::rows_practical(n, delta),
            buckets: Self::buckets_for_approx_top(k, residual_f2, nk, eps),
        }
    }

    /// Dimensioning in the Count-Min style interface `(ε', δ)` for pure
    /// point queries: guarantees `|est - n_q| ≤ ε'·sqrt(F₂)` w.p. `1-δ`
    /// per query. Sets `b = ⌈8/ε'²⌉` (so `8γ ≤ ε'·sqrt(F₂)` via eq. 5
    /// with k = 0... concretely `8·sqrt(F₂/b) ≤ ε'·sqrt(F₂) ⇔ b ≥ 64/ε'²`;
    /// we use the exact 64) and `t = ⌈log₂(1/δ)⌉` odd.
    pub fn for_point_queries(eps: f64, delta: f64) -> Self {
        assert!(eps > 0.0 && eps <= 1.0, "eps must be in (0,1]");
        assert!(delta > 0.0 && delta < 1.0);
        let buckets = (64.0 / (eps * eps)).ceil() as usize;
        let rows = (((1.0 / delta).log2()).ceil().max(1.0) as usize) | 1;
        Self { rows, buckets }
    }

    /// Total number of counters `t·b` (the `O(tb)` part of the paper's
    /// `O(tb + k)` space bound).
    pub fn total_counters(&self) -> usize {
        self.rows * self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_stores_dimensions() {
        let p = SketchParams::new(5, 100);
        assert_eq!(p.rows, 5);
        assert_eq!(p.buckets, 100);
        assert_eq!(p.total_counters(), 500);
    }

    #[test]
    #[should_panic(expected = "need at least one row")]
    fn zero_rows_rejected() {
        SketchParams::new(0, 10);
    }

    #[test]
    #[should_panic(expected = "need at least one bucket")]
    fn zero_buckets_rejected() {
        SketchParams::new(10, 0);
    }

    #[test]
    fn rows_practical_is_odd_and_grows_with_n() {
        let t1 = SketchParams::rows_practical(1_000, 0.01);
        let t2 = SketchParams::rows_practical(1_000_000, 0.01);
        assert_eq!(t1 % 2, 1);
        assert_eq!(t2 % 2, 1);
        assert!(t2 >= t1);
        // log2(1000/0.01) = log2(1e5) ≈ 16.6 → 17
        assert_eq!(t1, 17);
    }

    #[test]
    fn rows_conservative_larger_than_practical() {
        let p = SketchParams::rows_practical(100_000, 0.05);
        let c = SketchParams::rows_conservative(100_000, 0.05);
        assert!(c > p);
        assert_eq!(c % 2, 1);
    }

    #[test]
    fn buckets_collision_term_dominates_for_small_tail() {
        // Tiny residual: the 8k term governs.
        let b = SketchParams::buckets_for_approx_top(100, 1.0, 1000, 0.1);
        assert_eq!(b, 800);
    }

    #[test]
    fn buckets_variance_term_dominates_for_heavy_tail() {
        // residual F2 = 1e8, nk = 100, eps = 0.1 → 256e8/(10)^2... compute:
        // 8*32*1e8/(0.1*100)^2 = 2.56e10/100 = 2.56e8; larger than 8k = 80.
        let b = SketchParams::buckets_for_approx_top(10, 1e8, 100, 0.1);
        assert_eq!(b, 256_000_000);
    }

    #[test]
    fn buckets_scale_inverse_square_in_eps() {
        let b1 = SketchParams::buckets_for_approx_top(1, 1e6, 100, 0.1);
        let b2 = SketchParams::buckets_for_approx_top(1, 1e6, 100, 0.2);
        let ratio = b1 as f64 / b2 as f64;
        assert!((ratio - 4.0).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn buckets_reject_zero_eps() {
        SketchParams::buckets_for_approx_top(1, 1.0, 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "n_k must be positive")]
    fn buckets_reject_zero_nk() {
        SketchParams::buckets_for_approx_top(1, 1.0, 0, 0.1);
    }

    #[test]
    fn for_approx_top_combines_both() {
        let p = SketchParams::for_approx_top(10, 1e4, 50, 0.5, 100_000, 0.01);
        assert_eq!(p.rows, SketchParams::rows_practical(100_000, 0.01));
        assert_eq!(
            p.buckets,
            SketchParams::buckets_for_approx_top(10, 1e4, 50, 0.5)
        );
    }

    #[test]
    fn for_point_queries_dimensions() {
        let p = SketchParams::for_point_queries(0.1, 0.01);
        assert_eq!(p.buckets, 6400);
        assert_eq!(p.rows, 7); // ceil(log2(100)) = 7, already odd
    }

    #[test]
    #[should_panic(expected = "delta must be in (0,1)")]
    fn rows_reject_bad_delta() {
        SketchParams::rows_practical(10, 1.5);
    }
}
