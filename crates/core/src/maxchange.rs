//! The two-pass max-change algorithm (§4.2).
//!
//! Given streams `S1, S2`, find the items maximizing `|n_q^{S2} - n_q^{S1}|`.
//! The paper's algorithm, implemented verbatim:
//!
//! **Pass 1** — update counters only: for each `q` in `S1`,
//! `h_i[q] -= s_i[q]`; for each `q` in `S2`, `h_i[q] += s_i[q]`. The
//! sketch now holds the *difference vector* (this is sketch additivity:
//! `sketch(S2) - sketch(S1)`).
//!
//! **Pass 2** — over `S1` and `S2`: for each `q`, compute
//! `n̂_q = median_i{h_i[q]·s_i[q]}` (an estimate of the signed change),
//! maintain the set `A` of `l` objects with the largest `|n̂_q|`, and for
//! every item in `A` maintain exact occurrence counts in each stream.
//! Because `n̂_q` is *fixed* during pass 2 and the admission threshold
//! only rises, an item's membership is decided at its first occurrence
//! and "once an item is removed it is never added back" — so the exact
//! counts of the survivors are genuinely exact.
//!
//! Finally report the `k` items with the largest `|n_q^{S2} - n_q^{S1}|`
//! among `A`.

use crate::ingest::BLOCK;
use crate::params::SketchParams;
use crate::sketch::{CountSketch, EstimateBatchScratch};
use crate::topk::TopKTracker;
use cs_hash::ItemKey;
use cs_stream::Stream;
use std::collections::HashMap;

/// One reported max-change item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChangeItem {
    /// The item.
    pub key: ItemKey,
    /// Exact signed change `n_q^{S2} - n_q^{S1}` (from pass 2 counting).
    pub exact_change: i64,
    /// The sketch's estimate `n̂_q` of the signed change.
    pub estimated_change: i64,
}

/// Result of the max-change algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaxChangeResult {
    /// Top-`k` items by exact |change| among the `l` candidates,
    /// non-increasing in |change|.
    pub items: Vec<ChangeItem>,
    /// All `l` surviving candidates (superset of `items`).
    pub candidates: Vec<ChangeItem>,
}

/// A Count-Sketch of the difference `S2 - S1`, built incrementally.
#[derive(Debug, Clone)]
pub struct DiffSketch {
    sketch: CountSketch,
}

impl DiffSketch {
    /// Creates an empty difference sketch.
    pub fn new(params: SketchParams, seed: u64) -> Self {
        Self {
            sketch: CountSketch::new(params, seed),
        }
    }

    /// Pass-1 step over `S1`: `h_i[q] -= s_i[q]` for each occurrence.
    pub fn absorb_first(&mut self, stream: &Stream) {
        self.sketch.absorb(stream, -1);
    }

    /// Pass-1 step over `S2`: `h_i[q] += s_i[q]` for each occurrence.
    pub fn absorb_second(&mut self, stream: &Stream) {
        self.sketch.absorb(stream, 1);
    }

    /// Builds the difference sketch from two separately-built sketches
    /// (e.g. sketched on different days and stored): `sketch2 - sketch1`.
    pub fn from_sketches(
        sketch1: &CountSketch,
        sketch2: &CountSketch,
    ) -> Result<Self, crate::error::CoreError> {
        let mut diff = sketch2.clone();
        diff.subtract(sketch1)?;
        Ok(Self { sketch: diff })
    }

    /// The estimated signed change `n̂_q` of an item.
    pub fn estimate_change(&self, key: ItemKey) -> i64 {
        self.sketch.estimate(key)
    }

    /// Access to the underlying sketch.
    pub fn sketch(&self) -> &CountSketch {
        &self.sketch
    }

    /// Pass 2 + final selection. `l` is the candidate-set size (the paper
    /// keeps `l ≥ k` to absorb estimation error; §4.1 suggests `l = O(k)`).
    pub fn top_changes(&self, s1: &Stream, s2: &Stream, k: usize, l: usize) -> MaxChangeResult {
        assert!(l >= k, "need l >= k");
        // Working memory is O(l): the tracker plus exact counts and the
        // cached estimate for *tracked* items only. Untracked arrivals
        // re-probe the sketch (estimates are fixed in pass 2, so a
        // rejection at first occurrence is a rejection forever).
        let mut tracker = TopKTracker::new(l);
        let mut exact: HashMap<ItemKey, (u64, u64)> = HashMap::new();
        let mut estimates: HashMap<ItemKey, i64> = HashMap::new();
        let mut scratch = EstimateBatchScratch::new();
        let mut cand_keys: Vec<ItemKey> = Vec::with_capacity(BLOCK);
        let mut cand_ests: Vec<i64> = Vec::with_capacity(BLOCK);

        let mut pass = |stream: &Stream, which: usize| {
            for block in stream.as_slice().chunks(BLOCK) {
                // n̂_q is fixed throughout pass 2, so the estimates of a
                // block's untracked arrivals can be hoisted out of the
                // sequential scan and computed through the batch kernel
                // without changing a single admission decision.
                cand_keys.clear();
                for &key in block {
                    if !tracker.contains(key) && !cand_keys.contains(&key) {
                        cand_keys.push(key);
                    }
                }
                self.sketch
                    .estimate_batch_with_scratch(&cand_keys, &mut scratch, &mut cand_ests);
                for &key in block {
                    if !tracker.contains(key) {
                        let est = match cand_keys.iter().position(|&c| c == key) {
                            Some(p) => cand_ests[p],
                            // Tracked at block start but evicted mid-block:
                            // rare enough for the scalar probe.
                            None => self.sketch.estimate(key),
                        };
                        if let Some((evicted, _)) = tracker.offer(key, est.abs()) {
                            exact.remove(&evicted);
                            estimates.remove(&evicted);
                        }
                        if tracker.contains(key) {
                            exact.insert(key, (0, 0));
                            estimates.insert(key, est);
                        }
                    }
                    if let Some(counts) = exact.get_mut(&key) {
                        if which == 1 {
                            counts.0 += 1;
                        } else {
                            counts.1 += 1;
                        }
                    }
                }
            }
        };
        pass(s1, 1);
        pass(s2, 2);

        let mut candidates: Vec<ChangeItem> = tracker
            .items_desc()
            .into_iter()
            .map(|(key, _)| {
                let (c1, c2) = exact.get(&key).copied().unwrap_or((0, 0));
                ChangeItem {
                    key,
                    exact_change: c2 as i64 - c1 as i64,
                    estimated_change: estimates.get(&key).copied().unwrap_or(0),
                }
            })
            .collect();
        candidates.sort_unstable_by(|a, b| {
            b.exact_change
                .unsigned_abs()
                .cmp(&a.exact_change.unsigned_abs())
                .then(a.key.cmp(&b.key))
        });
        let items = candidates.iter().take(k).copied().collect();
        MaxChangeResult { items, candidates }
    }
}

/// The complete two-pass algorithm in one call.
///
/// ```
/// use cs_core::maxchange::max_change;
/// use cs_core::SketchParams;
/// use cs_stream::Stream;
///
/// // Yesterday item 1 dominated; today item 2 does.
/// let s1 = Stream::from_ids(std::iter::repeat(1).take(300).chain([2, 3]));
/// let s2 = Stream::from_ids(std::iter::repeat(2).take(400).chain([1, 3]));
/// let result = max_change(&s1, &s2, 2, 8, SketchParams::new(5, 64), 7);
/// assert_eq!(result.items[0].key.raw(), 2);
/// assert_eq!(result.items[0].exact_change, 399);
/// assert_eq!(result.items[1].exact_change, -299);
/// ```
pub fn max_change(
    s1: &Stream,
    s2: &Stream,
    k: usize,
    l: usize,
    params: SketchParams,
    seed: u64,
) -> MaxChangeResult {
    let mut diff = DiffSketch::new(params, seed);
    diff.absorb_first(s1);
    diff.absorb_second(s2);
    diff.top_changes(s1, s2, k, l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_stream::{ChangeSpec, ExactCounter, StreamPair};

    fn planted_pair() -> StreamPair {
        StreamPair::zipf_background(
            200,
            1.0,
            20_000,
            vec![
                ChangeSpec {
                    item: 10_000,
                    count_s1: 0,
                    count_s2: 3000,
                },
                ChangeSpec {
                    item: 10_001,
                    count_s1: 2500,
                    count_s2: 0,
                },
                ChangeSpec {
                    item: 10_002,
                    count_s1: 100,
                    count_s2: 2100,
                },
            ],
            99,
        )
    }

    #[test]
    fn finds_planted_changes() {
        let pair = planted_pair();
        let result = max_change(&pair.s1, &pair.s2, 3, 30, SketchParams::new(7, 1024), 5);
        let keys: Vec<u64> = result.items.iter().map(|c| c.key.raw()).collect();
        assert_eq!(keys, vec![10_000, 10_001, 10_002]);
        assert_eq!(result.items[0].exact_change, 3000);
        assert_eq!(result.items[1].exact_change, -2500);
        assert_eq!(result.items[2].exact_change, 2000);
    }

    #[test]
    fn exact_changes_match_oracle() {
        let pair = planted_pair();
        let e1 = ExactCounter::from_stream(&pair.s1);
        let e2 = ExactCounter::from_stream(&pair.s2);
        let result = max_change(&pair.s1, &pair.s2, 5, 50, SketchParams::new(7, 2048), 8);
        for item in &result.items {
            let want = e2.count(item.key) as i64 - e1.count(item.key) as i64;
            assert_eq!(
                item.exact_change, want,
                "pass-2 exact count wrong for {:?}",
                item.key
            );
        }
    }

    #[test]
    fn estimated_change_tracks_exact_change() {
        let pair = planted_pair();
        let result = max_change(&pair.s1, &pair.s2, 3, 30, SketchParams::new(9, 2048), 3);
        for item in &result.items {
            let err = (item.estimated_change - item.exact_change).abs();
            assert!(
                err < 500,
                "estimate {} far from exact {} for {:?}",
                item.estimated_change,
                item.exact_change,
                item.key
            );
        }
    }

    #[test]
    fn diff_sketch_is_additive() {
        // Building via absorb == building from two separate sketches.
        let pair = planted_pair();
        let params = SketchParams::new(5, 512);
        let mut incremental = DiffSketch::new(params, 7);
        incremental.absorb_first(&pair.s1);
        incremental.absorb_second(&pair.s2);

        let mut sk1 = CountSketch::new(params, 7);
        sk1.absorb(&pair.s1, 1);
        let mut sk2 = CountSketch::new(params, 7);
        sk2.absorb(&pair.s2, 1);
        let from_sketches = DiffSketch::from_sketches(&sk1, &sk2).unwrap();

        assert_eq!(
            incremental.sketch().counters(),
            from_sketches.sketch().counters()
        );
    }

    #[test]
    fn from_sketches_rejects_mismatched() {
        let a = CountSketch::new(SketchParams::new(5, 64), 1);
        let b = CountSketch::new(SketchParams::new(5, 64), 2);
        assert!(DiffSketch::from_sketches(&a, &b).is_err());
    }

    #[test]
    fn identical_streams_give_near_zero_changes() {
        let zipf = cs_stream::Zipf::new(100, 1.0);
        let s = zipf.stream(10_000, 4, cs_stream::ZipfStreamKind::Sampled);
        let result = max_change(&s, &s, 5, 20, SketchParams::new(5, 512), 2);
        for item in &result.items {
            assert_eq!(item.exact_change, 0);
        }
    }

    #[test]
    fn vanishing_item_detected_with_negative_sign() {
        let pair = StreamPair::zipf_background(
            100,
            1.0,
            5000,
            vec![ChangeSpec {
                item: 9999,
                count_s1: 2000,
                count_s2: 0,
            }],
            1,
        );
        let result = max_change(&pair.s1, &pair.s2, 1, 10, SketchParams::new(7, 512), 6);
        assert_eq!(result.items[0].key.raw(), 9999);
        assert_eq!(result.items[0].exact_change, -2000);
        assert!(result.items[0].estimated_change < 0);
    }

    #[test]
    fn empty_streams() {
        let result = max_change(
            &Stream::new(),
            &Stream::new(),
            3,
            10,
            SketchParams::new(3, 16),
            0,
        );
        assert!(result.items.is_empty());
    }

    #[test]
    fn item_only_in_s2_gets_exact_count() {
        // An item absent from S1 must still have exact_s1 = 0 and exact
        // s2 count: membership decided at its first (S2) occurrence.
        let s1 = Stream::from_ids(std::iter::repeat_n(1, 100));
        let s2 = Stream::from_ids(std::iter::repeat_n(2, 300));
        let result = max_change(&s1, &s2, 2, 5, SketchParams::new(5, 64), 3);
        let by_key: HashMap<u64, i64> = result
            .items
            .iter()
            .map(|c| (c.key.raw(), c.exact_change))
            .collect();
        assert_eq!(by_key[&2], 300);
        assert_eq!(by_key[&1], -100);
    }

    #[test]
    #[should_panic(expected = "need l >= k")]
    fn l_below_k_rejected() {
        let s = Stream::new();
        max_change(&s, &s, 5, 3, SketchParams::new(3, 16), 0);
    }
}
