//! Builder for configuring a Count-Sketch.
//!
//! Collects the paper's knobs — dimensions (explicit, or derived from an
//! `(ε, δ)` guarantee or the Lemma 5 APPROXTOP bound), seed, and row
//! combiner — and produces either a bare sketch or a full APPROXTOP
//! processor.

use crate::approx_top::{ApproxTopProcessor, HeapPolicy};
use crate::error::CoreError;
use crate::median::Combiner;
use crate::params::SketchParams;
use crate::sketch::CountSketch;

/// Builder for [`CountSketch`] / [`ApproxTopProcessor`].
#[derive(Debug, Clone)]
pub struct CountSketchBuilder {
    params: Option<SketchParams>,
    seed: u64,
    combiner: Combiner,
    policy: HeapPolicy,
}

impl Default for CountSketchBuilder {
    fn default() -> Self {
        Self {
            params: None,
            seed: 0,
            combiner: Combiner::Median,
            policy: HeapPolicy::IncrementTracked,
        }
    }
}

impl CountSketchBuilder {
    /// Starts a builder with defaults (median combiner, seed 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets explicit dimensions `t × b`.
    pub fn dimensions(mut self, rows: usize, buckets: usize) -> Self {
        self.params = Some(SketchParams::new(rows, buckets));
        self
    }

    /// Derives dimensions from a point-query guarantee:
    /// `|est - n_q| ≤ ε·sqrt(F₂)` with probability `1 - δ` per query.
    pub fn point_query_guarantee(mut self, eps: f64, delta: f64) -> Self {
        self.params = Some(SketchParams::for_point_queries(eps, delta));
        self
    }

    /// Derives dimensions from the Lemma 5 APPROXTOP bound. The caller
    /// supplies the distribution knowledge the paper assumes: the residual
    /// second moment and `n_k`.
    #[allow(clippy::too_many_arguments)]
    pub fn approx_top_guarantee(
        mut self,
        k: usize,
        residual_f2: f64,
        nk: u64,
        eps: f64,
        n: u64,
        delta: f64,
    ) -> Self {
        self.params = Some(SketchParams::for_approx_top(
            k,
            residual_f2,
            nk,
            eps,
            n,
            delta,
        ));
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the row combiner.
    pub fn combiner(mut self, combiner: Combiner) -> Self {
        self.combiner = combiner;
        self
    }

    /// Sets the heap maintenance policy for processors built by
    /// [`Self::build_processor`].
    pub fn heap_policy(mut self, policy: HeapPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The dimensions the builder currently holds, if any.
    pub fn params(&self) -> Option<SketchParams> {
        self.params
    }

    /// Builds a bare sketch.
    pub fn build(self) -> Result<CountSketch, CoreError> {
        let params = self.params.ok_or_else(|| {
            CoreError::InvalidParameter(
                "dimensions not set: call dimensions() or a *_guarantee() method".into(),
            )
        })?;
        Ok(CountSketch::new(params, self.seed).with_combiner(self.combiner))
    }

    /// Builds a full APPROXTOP processor tracking `k` items.
    pub fn build_processor(self, k: usize) -> Result<ApproxTopProcessor, CoreError> {
        let policy = self.policy;
        let combiner = self.combiner;
        let params = self.params.ok_or_else(|| {
            CoreError::InvalidParameter(
                "dimensions not set: call dimensions() or a *_guarantee() method".into(),
            )
        })?;
        let mut p = ApproxTopProcessor::new(params, k, self.seed);
        p = p.with_policy(policy).with_combiner(combiner);
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_hash::ItemKey;

    #[test]
    fn explicit_dimensions() {
        let s = CountSketchBuilder::new()
            .dimensions(5, 100)
            .seed(3)
            .build()
            .unwrap();
        assert_eq!(s.rows(), 5);
        assert_eq!(s.buckets(), 100);
        assert_eq!(s.seed(), 3);
    }

    #[test]
    fn missing_dimensions_is_error() {
        let err = CountSketchBuilder::new().build().unwrap_err();
        assert!(matches!(err, CoreError::InvalidParameter(_)));
        let err = CountSketchBuilder::new().build_processor(5).unwrap_err();
        assert!(matches!(err, CoreError::InvalidParameter(_)));
    }

    #[test]
    fn point_query_guarantee_sets_params() {
        let b = CountSketchBuilder::new().point_query_guarantee(0.1, 0.01);
        let p = b.params().unwrap();
        assert_eq!(p.buckets, 6400);
        assert!(p.rows >= 7);
    }

    #[test]
    fn approx_top_guarantee_sets_params() {
        let b = CountSketchBuilder::new().approx_top_guarantee(10, 1e4, 50, 0.5, 100_000, 0.01);
        let p = b.params().unwrap();
        assert_eq!(
            p,
            SketchParams::for_approx_top(10, 1e4, 50, 0.5, 100_000, 0.01)
        );
    }

    #[test]
    fn combiner_propagates() {
        let s = CountSketchBuilder::new()
            .dimensions(3, 8)
            .combiner(Combiner::Mean)
            .build()
            .unwrap();
        assert_eq!(s.combiner(), Combiner::Mean);
    }

    #[test]
    fn processor_builds_and_works() {
        let mut p = CountSketchBuilder::new()
            .dimensions(5, 64)
            .seed(9)
            .build_processor(3)
            .unwrap();
        for _ in 0..10 {
            p.observe(ItemKey(1));
        }
        p.observe(ItemKey(2));
        let top = p.result();
        assert_eq!(top.items[0].0, ItemKey(1));
    }

    #[test]
    fn same_builder_config_gives_mergeable_sketches() {
        let make = || {
            CountSketchBuilder::new()
                .dimensions(4, 32)
                .seed(5)
                .build()
                .unwrap()
        };
        let mut a = make();
        let b = make();
        assert!(a.merge(&b).is_ok());
    }
}
