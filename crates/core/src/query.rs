//! Read-optimized query layer: a serving handle over a Count-Sketch.
//!
//! The paper's serving operations — `ESTIMATE(C, q)` (§3), ApproxTop's
//! per-candidate re-estimation (Lemma 5), the max-change scans (§4.2) —
//! are batch-shaped: many keys probed against a sketch that changes
//! rarely or not at all between probes. [`QueryEngine`] packages the
//! read path for that shape:
//!
//! * every estimate goes through the batched kernel
//!   ([`GenericCountSketch::estimate_batch_with_scratch`]) or its scalar
//!   equivalent over the engine's **precomputed row views**, with one
//!   standing scratch — no per-call allocation;
//! * an optional **bounded hot-key cache** memoizes estimates for skewed
//!   read mixes. The cache is **epoch-invalidated**: the engine mediates
//!   all updates and bumps its epoch on any mutation, and a cached value
//!   is only served while its epoch matches — a cached answer can never
//!   be stale. Between updates, repeated probes of the same hot keys
//!   cost one hash-map lookup instead of `t` hash evaluations and `t`
//!   counter loads.
//!
//! The engine owns its sketch precisely so that the epoch contract is
//! airtight: there is no way to mutate the counters without the engine
//! seeing it. Estimates are bit-identical to the sketch's own
//! [`GenericCountSketch::estimate`] for every combiner — cached or not.

use crate::median::combine;
use crate::sketch::{EstimateBatchScratch, GenericCountSketch};
use cs_hash::{BucketHasher, ItemKey, SignHasher};
use cs_stream::Stream;
use std::collections::HashMap;

/// A read-optimized handle that owns a sketch, routes estimates through
/// the batched kernel, and (optionally) memoizes hot keys in a bounded
/// epoch-invalidated cache.
///
/// ```
/// use cs_core::query::QueryEngine;
/// use cs_core::{CountSketch, SketchParams};
/// use cs_hash::ItemKey;
///
/// let sketch = CountSketch::new(SketchParams::new(5, 256), 42);
/// let mut engine = QueryEngine::new(sketch).with_hot_key_cache(1024);
/// engine.update(ItemKey(7), 500);
/// assert_eq!(engine.estimate(ItemKey(7)), 500); // computed, cached
/// assert_eq!(engine.estimate(ItemKey(7)), 500); // served from cache
/// engine.update(ItemKey(7), 1); // bumps the epoch: cache invalidated
/// assert_eq!(engine.estimate(ItemKey(7)), 501); // never stale
/// ```
#[derive(Debug, Clone)]
pub struct QueryEngine<H = cs_hash::PairwiseHash, S = cs_hash::PairwiseSign> {
    sketch: GenericCountSketch<H, S>,
    /// Start offset of each row's counters — the precomputed row views
    /// the scalar path probes without re-deriving `i * buckets`.
    row_starts: Vec<usize>,
    scratch: EstimateBatchScratch,
    cache: Option<HotKeyCache>,
    /// Bumped on every mutation the engine mediates. Cache entries are
    /// valid only while their insertion epoch matches.
    epoch: u64,
    // Reused split buffers for the cached batch path.
    miss_keys: Vec<ItemKey>,
    miss_slots: Vec<usize>,
    miss_ests: Vec<i64>,
}

/// The bounded hot-key cache. All entries share one insertion epoch, so
/// an epoch bump invalidates the whole generation at once (the map is
/// cleared lazily on the next access); within a generation, slots are
/// first-come until capacity — under a skewed read mix the hot keys
/// claim them almost immediately.
#[derive(Debug, Clone)]
struct HotKeyCache {
    capacity: usize,
    /// Epoch at which the current generation of entries was inserted.
    epoch: u64,
    entries: HashMap<ItemKey, i64>,
    hits: u64,
    misses: u64,
}

impl HotKeyCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            epoch: 0,
            entries: HashMap::with_capacity(capacity.min(1 << 16)),
            hits: 0,
            misses: 0,
        }
    }

    /// Drops the previous generation if the engine has moved on.
    fn sync(&mut self, epoch: u64) {
        if self.epoch != epoch {
            self.entries.clear();
            self.epoch = epoch;
        }
    }

    fn get(&mut self, epoch: u64, key: ItemKey) -> Option<i64> {
        self.sync(epoch);
        let hit = self.entries.get(&key).copied();
        match hit {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        hit
    }

    fn insert(&mut self, epoch: u64, key: ItemKey, value: i64) {
        self.sync(epoch);
        if self.entries.len() < self.capacity {
            self.entries.insert(key, value);
        }
    }
}

impl<H: BucketHasher, S: SignHasher> QueryEngine<H, S> {
    /// Wraps a sketch (cache disabled; see [`Self::with_hot_key_cache`]).
    pub fn new(sketch: GenericCountSketch<H, S>) -> Self {
        let buckets = sketch.buckets();
        let row_starts = (0..sketch.rows()).map(|i| i * buckets).collect();
        Self {
            sketch,
            row_starts,
            scratch: EstimateBatchScratch::new(),
            cache: None,
            epoch: 0,
            miss_keys: Vec::new(),
            miss_slots: Vec::new(),
            miss_ests: Vec::new(),
        }
    }

    /// Enables the bounded hot-key cache with room for `capacity`
    /// estimates. `capacity = 0` disables it again.
    pub fn with_hot_key_cache(mut self, capacity: usize) -> Self {
        self.cache = (capacity > 0).then(|| HotKeyCache::new(capacity));
        self
    }

    /// Read access to the underlying sketch.
    pub fn sketch(&self) -> &GenericCountSketch<H, S> {
        &self.sketch
    }

    /// Unwraps the engine, returning the sketch.
    pub fn into_sketch(self) -> GenericCountSketch<H, S> {
        self.sketch
    }

    /// The current mutation epoch. Every mediated update increments it;
    /// cached estimates from earlier epochs are never served.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `(hits, misses)` of the hot-key cache since construction, or
    /// `(0, 0)` when the cache is disabled.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache
            .as_ref()
            .map(|c| (c.hits, c.misses))
            .unwrap_or((0, 0))
    }

    /// Adds one occurrence. Bumps the epoch.
    pub fn add(&mut self, key: ItemKey) {
        self.update(key, 1);
    }

    /// Turnstile update. Bumps the epoch.
    pub fn update(&mut self, key: ItemKey, weight: i64) {
        self.epoch += 1;
        self.sketch.update(key, weight);
    }

    /// Batched weighted update through the block ingestion engine. Bumps
    /// the epoch (once — invalidation is all-or-nothing per generation).
    pub fn update_batch_weighted(&mut self, keys: &[ItemKey], weight: i64) {
        self.epoch += 1;
        self.sketch.update_batch_weighted(keys, weight);
    }

    /// Absorbs a stream with `weight` per occurrence. Bumps the epoch.
    pub fn absorb(&mut self, stream: &Stream, weight: i64) {
        self.epoch += 1;
        self.sketch.absorb(stream, weight);
    }

    /// `ESTIMATE(C, q)` — served from the hot-key cache when the entry's
    /// epoch is current, computed (and cached) otherwise. Bit-identical
    /// to [`GenericCountSketch::estimate`].
    pub fn estimate(&mut self, key: ItemKey) -> i64 {
        if let Some(cache) = self.cache.as_mut() {
            if let Some(value) = cache.get(self.epoch, key) {
                return value;
            }
        }
        let est = self.scalar_estimate(key);
        if let Some(cache) = self.cache.as_mut() {
            cache.insert(self.epoch, key, est);
        }
        est
    }

    /// Batched `ESTIMATE` over `keys`: `out[j]` answers `keys[j]`.
    /// Cache-aware: hits are served directly and only the misses go
    /// through the batch kernel (then populate the cache). Bit-identical
    /// to scalar [`GenericCountSketch::estimate`] per key.
    pub fn estimate_batch(&mut self, keys: &[ItemKey], out: &mut Vec<i64>) {
        let Some(cache) = self.cache.as_mut() else {
            self.sketch
                .estimate_batch_with_scratch(keys, &mut self.scratch, out);
            return;
        };
        out.clear();
        out.resize(keys.len(), 0);
        self.miss_keys.clear();
        self.miss_slots.clear();
        for (j, &key) in keys.iter().enumerate() {
            match cache.get(self.epoch, key) {
                Some(value) => out[j] = value,
                None => {
                    self.miss_keys.push(key);
                    self.miss_slots.push(j);
                }
            }
        }
        self.sketch.estimate_batch_with_scratch(
            &self.miss_keys,
            &mut self.scratch,
            &mut self.miss_ests,
        );
        for ((&j, &key), &est) in self
            .miss_slots
            .iter()
            .zip(&self.miss_keys)
            .zip(&self.miss_ests)
        {
            out[j] = est;
            cache.insert(self.epoch, key, est);
        }
    }

    /// One key through the precomputed row views, no cache involved.
    fn scalar_estimate(&mut self, key: ItemKey) -> i64 {
        let k = key.raw();
        self.scratch.rows.clear();
        for (i, &start) in self.row_starts.iter().enumerate() {
            let bucket = self.sketch.hashers[i].bucket(k);
            let sign = self.sketch.signs[i].sign(k);
            self.scratch
                .rows
                .push(sign.saturating_mul(self.sketch.counters[start + bucket]));
        }
        combine(
            self.sketch.combiner,
            &self.scratch.rows,
            &mut self.scratch.sort,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SketchParams;
    use crate::sketch::CountSketch;
    use cs_stream::{Zipf, ZipfStreamKind};

    fn loaded_sketch() -> CountSketch {
        let mut s = CountSketch::new(SketchParams::new(5, 128), 7);
        let stream = Zipf::new(100, 1.0).stream(10_000, 3, ZipfStreamKind::Sampled);
        s.absorb(&stream, 1);
        s
    }

    #[test]
    fn engine_matches_sketch_estimates() {
        let sketch = loaded_sketch();
        let mut engine = QueryEngine::new(sketch.clone());
        for id in 0..150u64 {
            assert_eq!(engine.estimate(ItemKey(id)), sketch.estimate(ItemKey(id)));
        }
    }

    #[test]
    fn cached_engine_matches_and_hits() {
        let sketch = loaded_sketch();
        let mut engine = QueryEngine::new(sketch.clone()).with_hot_key_cache(64);
        for _ in 0..3 {
            for id in 0..50u64 {
                assert_eq!(engine.estimate(ItemKey(id)), sketch.estimate(ItemKey(id)));
            }
        }
        let (hits, misses) = engine.cache_stats();
        assert_eq!(misses, 50, "each key misses exactly once");
        assert_eq!(hits, 100, "the two re-scans hit");
    }

    #[test]
    fn update_invalidates_cache() {
        let mut engine = QueryEngine::new(loaded_sketch()).with_hot_key_cache(64);
        let key = ItemKey(0);
        let before = engine.estimate(key);
        assert_eq!(engine.estimate(key), before);
        engine.update(key, 1000);
        assert_eq!(
            engine.estimate(key),
            before + 1000,
            "stale cache entry served after update"
        );
        engine.update_batch_weighted(&[key], 1);
        assert_eq!(engine.estimate(key), before + 1001);
    }

    #[test]
    fn epoch_counts_mutations() {
        let mut engine = QueryEngine::new(loaded_sketch());
        assert_eq!(engine.epoch(), 0);
        engine.add(ItemKey(1));
        engine.update(ItemKey(2), -5);
        engine.update_batch_weighted(&[ItemKey(3)], 2);
        assert_eq!(engine.epoch(), 3);
    }

    #[test]
    fn batch_path_with_and_without_cache_matches_scalar() {
        let sketch = loaded_sketch();
        let keys: Vec<ItemKey> = (0..120u64).map(|i| ItemKey(i % 40)).collect();
        let want: Vec<i64> = keys.iter().map(|&k| sketch.estimate(k)).collect();
        let mut out = Vec::new();
        let mut plain = QueryEngine::new(sketch.clone());
        plain.estimate_batch(&keys, &mut out);
        assert_eq!(out, want);
        let mut cached = QueryEngine::new(sketch).with_hot_key_cache(16);
        for _ in 0..2 {
            cached.estimate_batch(&keys, &mut out);
            assert_eq!(out, want);
        }
        let (hits, _) = cached.cache_stats();
        assert!(hits > 0, "repeated keys should hit the bounded cache");
    }

    #[test]
    fn cache_capacity_is_bounded() {
        let mut engine = QueryEngine::new(loaded_sketch()).with_hot_key_cache(8);
        for id in 0..100u64 {
            engine.estimate(ItemKey(id));
        }
        let cache = engine.cache.as_ref().unwrap();
        assert!(cache.entries.len() <= 8);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let mut engine = QueryEngine::new(loaded_sketch()).with_hot_key_cache(0);
        engine.estimate(ItemKey(1));
        assert_eq!(engine.cache_stats(), (0, 0));
    }

    #[test]
    fn interleaved_updates_and_queries_stay_exact() {
        let mut engine = QueryEngine::new(CountSketch::new(SketchParams::new(5, 256), 1))
            .with_hot_key_cache(32);
        let mut mirror = CountSketch::new(SketchParams::new(5, 256), 1);
        for round in 0..20i64 {
            let key = ItemKey((round % 5) as u64);
            engine.update(key, round);
            mirror.update(key, round);
            for id in 0..10u64 {
                assert_eq!(
                    engine.estimate(ItemKey(id)),
                    mirror.estimate(ItemKey(id)),
                    "round {round} key {id}"
                );
            }
        }
    }
}
