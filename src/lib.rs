//! # frequent-items
//!
//! A production-quality Rust implementation of **Charikar, Chen &
//! Farach-Colton, "Finding frequent items in data streams"** — the
//! COUNT SKETCH — together with the full suite of baseline algorithms the
//! paper compares against or cites, the stream/hash substrates they run
//! on, and a harness reproducing every table and figure of the paper's
//! evaluation.
//!
//! ## Crates
//!
//! | Facade module | Backing crate | Contents |
//! |---|---|---|
//! | [`sketch`] | `cs-core` | the Count-Sketch, APPROXTOP, CANDIDATETOP, max-change |
//! | [`baselines`] | `cs-baselines` | SAMPLING, concise/counting samples, KPS, Lossy Counting, Sticky Sampling, Count-Min, Space-Saving |
//! | [`stream`] | `cs-stream` | streams, Zipf generators, exact oracle, moments |
//! | [`hash`] | `cs-hash` | pairwise/k-wise families, sign hashes, tabulation |
//! | [`metrics`] | `cs-metrics` | recall/error metrics, Table 1 theory, tables |
//! | [`net`] | `cs-net` | CSWP wire protocol, site agents, quorum coordinator server |
//!
//! ## Quickstart
//!
//! ```
//! use frequent_items::prelude::*;
//!
//! // A query stream where "rust" dominates.
//! let mut queries = vec!["rust"; 500];
//! queries.extend(vec!["java"; 120]);
//! queries.extend(vec!["go"; 80]);
//! queries.extend((0..300).map(|_| "noise").collect::<Vec<_>>());
//! let stream = Stream::from_items(queries);
//!
//! // One pass, O(t·b + k) memory.
//! let result = approx_top(&stream, 2, SketchParams::new(5, 256), 42);
//! assert_eq!(result.items[0].0, ItemKey::of("rust"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;

/// The Count-Sketch and the paper's algorithms (re-export of `cs-core`).
pub mod sketch {
    pub use cs_core::*;
}

/// Baseline frequent-items algorithms (re-export of `cs-baselines`).
pub mod baselines {
    pub use cs_baselines::*;
}

/// Stream model, generators and the exact oracle (re-export of
/// `cs-stream`).
pub mod stream {
    pub use cs_stream::*;
}

/// Hash-function substrate (re-export of `cs-hash`).
pub mod hash {
    pub use cs_hash::*;
}

/// Evaluation metrics and the paper's space formulas (re-export of
/// `cs-metrics`).
pub mod metrics {
    pub use cs_metrics::*;
}

/// Wire transport for distributed sketch shipping (re-export of
/// `cs-net`).
pub mod net {
    pub use cs_net::*;
}

/// The most common imports.
pub mod prelude {
    pub use cs_baselines::StreamSummary;
    pub use cs_core::approx_top::{approx_top, ApproxTopProcessor, ApproxTopResult};
    pub use cs_core::builder::CountSketchBuilder;
    pub use cs_core::candidate_top::{candidate_top_one_pass, candidate_top_two_pass};
    pub use cs_core::distributed::{
        site_report, DistributedSketch, ExclusionReason, MergeReport, QuorumCoordinator,
        QuorumOutcome, RetryPolicy, SiteReport,
    };
    pub use cs_core::approx_top::HeapPolicy;
    pub use cs_core::maxchange::{max_change, DiffSketch, MaxChangeResult};
    pub use cs_core::parallel::{
        parallel_approx_top, sketch_stream_pooled, AtomicCountSketch, ParallelApproxTop,
        SketchPool,
    };
    pub use cs_core::median::Combiner;
    pub use cs_core::query::QueryEngine;
    pub use cs_core::sketch::{
        CheckedEstimate, EstimateBatchScratch, EstimateScratch, SketchHealth,
    };
    pub use cs_core::topk::TopKTracker;
    pub use cs_core::snapshot::{
        inspect_snapshot_bytes, read_snapshot_file, write_snapshot_file, SnapshotInfo,
        SnapshotKind,
    };
    pub use cs_core::{CoreError, CountSketch, FastCountSketch, SketchParams};
    pub use cs_hash::ItemKey;
    pub use cs_net::{
        render_report, CoordinatorServer, NetError, ServeConfig, ShipOutcome, SiteAgent,
    };
    pub use cs_stream::{
        ExactCounter, Fault, FaultInjector, LinkFault, Stream, Zipf, ZipfStreamKind,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_paths_compose() {
        let stream = Stream::from_ids([1, 1, 1, 2]);
        let sketch = CountSketchBuilder::new().dimensions(3, 32).build().unwrap();
        let mut p = ApproxTopProcessor::with_sketch(sketch, 2);
        p.observe_stream(&stream);
        assert_eq!(p.result().items[0].0, ItemKey(1));
    }

    #[test]
    fn string_items_work_end_to_end() {
        let stream = Stream::from_items(["a", "a", "b", "a"]);
        let result = approx_top(&stream, 1, SketchParams::new(3, 16), 0);
        assert_eq!(result.items[0].0, ItemKey::of("a"));
    }
}
