//! Implementation of the `fi` command-line tool.
//!
//! Lives in the library (rather than the binary) so the parsing and the
//! text pipeline are unit-testable; `src/bin/fi.rs` is a thin shell.
//!
//! ```text
//! fi top [-k N] [-t ROWS] [-b BUCKETS] [--seed S] [FILE]
//!     one-pass APPROXTOP over whitespace-separated items
//! fi diff [-k N] [-t ROWS] [-b BUCKETS] [--seed S] FILE1 FILE2
//!     §4.2 max-change between two item files
//! fi iceberg --phi P [--eps E] [-t ROWS] [-b BUCKETS] [FILE]
//!     items above a frequency threshold
//! ```

use crate::prelude::*;
use crate::sketch::iceberg::IcebergProcessor;
use std::collections::HashMap;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Subcommand: `top`, `diff` or `iceberg`.
    pub command: String,
    /// Top-k size.
    pub k: usize,
    /// Sketch rows.
    pub rows: usize,
    /// Sketch buckets.
    pub buckets: usize,
    /// Seed.
    pub seed: u64,
    /// Iceberg support threshold φ.
    pub phi: f64,
    /// Iceberg slack ε.
    pub eps: f64,
    /// Algorithm for `top`: count-sketch (default), space-saving, kps,
    /// lossy.
    pub algorithm: String,
    /// Positional file arguments.
    pub files: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            command: String::new(),
            k: 10,
            rows: 5,
            buckets: 4096,
            seed: 1,
            phi: 0.01,
            eps: 0.002,
            algorithm: "count-sketch".into(),
            files: Vec::new(),
        }
    }
}

/// Parses arguments (without the program name).
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    opts.command = it
        .next()
        .ok_or_else(|| "missing subcommand (top | diff | iceberg)".to_string())?
        .clone();
    if !matches!(opts.command.as_str(), "top" | "diff" | "iceberg") {
        return Err(format!("unknown subcommand '{}'", opts.command));
    }
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "-k" => opts.k = flag_value("-k")?.parse().map_err(|e| format!("-k: {e}"))?,
            "-t" => opts.rows = flag_value("-t")?.parse().map_err(|e| format!("-t: {e}"))?,
            "-b" => opts.buckets = flag_value("-b")?.parse().map_err(|e| format!("-b: {e}"))?,
            "--seed" => {
                opts.seed = flag_value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--phi" => {
                opts.phi = flag_value("--phi")?
                    .parse()
                    .map_err(|e| format!("--phi: {e}"))?
            }
            "--eps" => {
                opts.eps = flag_value("--eps")?
                    .parse()
                    .map_err(|e| format!("--eps: {e}"))?
            }
            "--algorithm" => {
                opts.algorithm = flag_value("--algorithm")?.clone();
                if !matches!(
                    opts.algorithm.as_str(),
                    "count-sketch" | "space-saving" | "kps" | "lossy"
                ) {
                    return Err(format!("unknown algorithm '{}'", opts.algorithm));
                }
            }
            other if other.starts_with('-') => return Err(format!("unknown flag '{other}'")),
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.k == 0 || opts.rows == 0 || opts.buckets == 0 {
        return Err("k, rows and buckets must be positive".into());
    }
    match opts.command.as_str() {
        "diff" if opts.files.len() != 2 => Err("diff needs exactly two files".into()),
        "top" | "iceberg" if opts.files.len() > 1 => {
            Err("at most one input file (or stdin)".into())
        }
        _ => Ok(opts),
    }
}

/// Tokenizes input text into a stream of items, remembering each key's
/// first textual form for display.
pub fn tokenize(text: &str) -> (Stream, HashMap<ItemKey, String>) {
    let mut labels = HashMap::new();
    let stream = text
        .split_whitespace()
        .map(|tok| {
            let key = ItemKey::of(tok);
            labels.entry(key).or_insert_with(|| tok.to_string());
            key
        })
        .collect();
    (stream, labels)
}

fn label(labels: &HashMap<ItemKey, String>, key: ItemKey) -> &str {
    labels.get(&key).map(String::as_str).unwrap_or("<?>")
}

/// Runs `fi top` over input text; returns the report.
pub fn run_top(opts: &Options, text: &str) -> String {
    use cs_baselines::{KpsFrequent, LossyCounting, SpaceSaving, StreamSummary};
    let (stream, labels) = tokenize(text);
    let items: Vec<(ItemKey, i64)> = match opts.algorithm.as_str() {
        "count-sketch" => {
            approx_top(
                &stream,
                opts.k,
                SketchParams::new(opts.rows, opts.buckets),
                opts.seed,
            )
            .items
        }
        other => {
            let mut alg: Box<dyn StreamSummary> = match other {
                "space-saving" => Box::new(SpaceSaving::new(4 * opts.k)),
                "kps" => Box::new(KpsFrequent::with_capacity(4 * opts.k)),
                "lossy" => Box::new(LossyCounting::new((1.0 / (4 * opts.k) as f64).min(0.5))),
                _ => unreachable!("parse_args validates the algorithm"),
            };
            alg.process_stream(&stream);
            alg.candidates()
                .into_iter()
                .take(opts.k)
                .map(|(key, est)| (key, est as i64))
                .collect()
        }
    };
    let mut out = format!(
        "# top-{} of {} occurrences ({} distinct seen, algorithm: {})\n",
        opts.k,
        stream.len(),
        labels.len(),
        opts.algorithm
    );
    for (key, est) in &items {
        out.push_str(&format!("{:>10}  {}\n", est, label(&labels, *key)));
    }
    out
}

/// Runs `fi diff` over two input texts; returns the report.
pub fn run_diff(opts: &Options, text1: &str, text2: &str) -> String {
    let (s1, mut labels) = tokenize(text1);
    let (s2, labels2) = tokenize(text2);
    labels.extend(labels2);
    let result = max_change(
        &s1,
        &s2,
        opts.k,
        4 * opts.k,
        SketchParams::new(opts.rows, opts.buckets),
        opts.seed,
    );
    let mut out = format!(
        "# top-{} changes ({} -> {} occurrences)\n",
        opts.k,
        s1.len(),
        s2.len()
    );
    for item in &result.items {
        out.push_str(&format!(
            "{:>+10}  {}\n",
            item.exact_change,
            label(&labels, item.key)
        ));
    }
    out
}

/// Runs `fi iceberg` over input text; returns the report.
pub fn run_iceberg(opts: &Options, text: &str) -> String {
    let (stream, labels) = tokenize(text);
    let mut p = IcebergProcessor::new(
        SketchParams::new(opts.rows, opts.buckets),
        opts.phi,
        opts.eps,
        2,
        opts.seed,
    );
    p.observe_stream(&stream);
    let result = p.result();
    let mut out = format!(
        "# items above {:.2}% of {} occurrences (threshold {})\n",
        opts.phi * 100.0,
        result.n,
        result.threshold
    );
    for (key, est) in &result.items {
        out.push_str(&format!("{:>10}  {}\n", est, label(&labels, *key)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_defaults() {
        let o = parse_args(&args("top")).unwrap();
        assert_eq!(o.command, "top");
        assert_eq!(o.k, 10);
        assert!(o.files.is_empty());
    }

    #[test]
    fn parse_flags_and_files() {
        let o = parse_args(&args("diff -k 3 -t 7 -b 1024 --seed 9 a.txt b.txt")).unwrap();
        assert_eq!(o.k, 3);
        assert_eq!(o.rows, 7);
        assert_eq!(o.buckets, 1024);
        assert_eq!(o.seed, 9);
        assert_eq!(o.files, vec!["a.txt", "b.txt"]);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&args("bogus")).is_err());
        assert!(parse_args(&args("top --wat")).is_err());
        assert!(parse_args(&args("top -k")).is_err());
        assert!(parse_args(&args("top -k zero")).is_err());
        assert!(parse_args(&args("top -k 0")).is_err());
        assert!(parse_args(&args("diff only-one.txt")).is_err());
        assert!(parse_args(&args("top a.txt b.txt")).is_err());
    }

    #[test]
    fn tokenize_counts_and_labels() {
        let (stream, labels) = tokenize("a b a\nc a");
        assert_eq!(stream.len(), 5);
        assert_eq!(labels.len(), 3);
        assert_eq!(labels[&ItemKey::of("a")], "a");
    }

    #[test]
    fn top_finds_dominant_token() {
        let opts = Options {
            command: "top".into(),
            k: 2,
            ..Default::default()
        };
        let text = "x ".repeat(100) + &"y ".repeat(30) + "z";
        let report = run_top(&opts, &text);
        let first_line = report.lines().nth(1).unwrap();
        assert!(first_line.contains('x'), "{report}");
        assert!(first_line.trim().starts_with("100"), "{report}");
    }

    #[test]
    fn diff_reports_signed_changes() {
        let opts = Options {
            command: "diff".into(),
            k: 2,
            ..Default::default()
        };
        let day1 = "old ".repeat(50) + &"stable ".repeat(20);
        let day2 = "new ".repeat(60) + &"stable ".repeat(20);
        let report = run_diff(&opts, &day1, &day2);
        assert!(report.contains("+60  new"), "{report}");
        assert!(report.contains("-50  old"), "{report}");
    }

    #[test]
    fn iceberg_filters_by_phi() {
        let opts = Options {
            command: "iceberg".into(),
            phi: 0.3,
            eps: 0.05,
            ..Default::default()
        };
        let text = "big ".repeat(60) + &"small ".repeat(5) + &"mid ".repeat(35);
        let report = run_iceberg(&opts, &text);
        assert!(report.contains("big"));
        assert!(report.contains("mid"));
        assert!(!report.contains("small"), "{report}");
    }

    #[test]
    fn empty_input_is_graceful() {
        let opts = Options {
            command: "top".into(),
            ..Default::default()
        };
        let report = run_top(&opts, "");
        assert!(report.contains("top-10 of 0 occurrences"));
    }
}

#[cfg(test)]
mod algorithm_tests {
    use super::*;

    #[test]
    fn parse_algorithm_flag() {
        let args: Vec<String> = "top --algorithm space-saving"
            .split_whitespace()
            .map(String::from)
            .collect();
        let o = parse_args(&args).unwrap();
        assert_eq!(o.algorithm, "space-saving");
        let bad: Vec<String> = "top --algorithm bogus"
            .split_whitespace()
            .map(String::from)
            .collect();
        assert!(parse_args(&bad).is_err());
    }

    #[test]
    fn every_algorithm_finds_the_heavy_token() {
        let text = "hot ".repeat(200) + &"cold ".repeat(10) + "once";
        for alg in ["count-sketch", "space-saving", "kps", "lossy"] {
            let opts = Options {
                command: "top".into(),
                k: 1,
                algorithm: alg.into(),
                ..Default::default()
            };
            let report = run_top(&opts, &text);
            let first = report.lines().nth(1).unwrap_or("");
            assert!(first.contains("hot"), "{alg}: {report}");
        }
    }
}
