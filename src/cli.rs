//! Implementation of the `fi` command-line tool.
//!
//! Lives in the library (rather than the binary) so the parsing and the
//! text pipeline are unit-testable; `src/bin/fi.rs` is a thin shell.
//!
//! ```text
//! fi top [-k N] [-t ROWS] [-b BUCKETS] [--seed S] [--threads N]
//!        [--snapshot PATH] [--snapshot-every N] [--resume PATH] [FILE]
//!     one-pass APPROXTOP over whitespace-separated items
//! fi diff [-k N] [-t ROWS] [-b BUCKETS] [--seed S] FILE1 FILE2
//!     §4.2 max-change between two item files
//! fi iceberg --phi P [--eps E] [-t ROWS] [-b BUCKETS] [FILE]
//!     items above a frequency threshold
//! fi inspect [-k N] SNAPSHOT
//!     summarize a CSNP snapshot: header, geometry, health, top counters
//! fi serve --listen ADDR --sites N [--quorum Q] [--deadline-ms MS] [...]
//!     run the quorum coordinator; print the merged top-k when done
//! fi ship --to ADDR --site-id I --sites N [--fault SPEC] [FILE]
//!     sketch a local item file and ship it to the coordinator
//! fi coordinate [-k N] FILE...
//!     the in-process reference merge over the same site files
//! fi shard --sites N --out-prefix P [FILE]
//!     split an item file into per-site files by key shard
//! ```
//!
//! `serve`/`ship` speak the CSWP framed protocol from [`cs_net`]; the
//! report `serve` prints is **byte-identical** to `coordinate` run over
//! the same per-site files (exclusion comment lines aside), which the
//! CI net-smoke job asserts with a literal `diff`.
//!
//! `--resume` restores APPROXTOP state from a checksummed snapshot
//! written by an earlier `--snapshot` run, so a long-lived counting job
//! survives restarts without rereading history; `--snapshot-every N`
//! additionally persists the state after every N observed items, so a
//! crash loses at most N items of progress. Failures map to distinct
//! exit codes (see [`CliError`]): bad invocation, I/O failure, and
//! corrupt input are distinguishable to calling scripts.

use crate::prelude::*;
use crate::sketch::iceberg::IcebergProcessor;
use std::collections::HashMap;
use std::path::Path;

/// A CLI failure, carrying the distinct process exit code for its class.
///
/// The codes are part of the tool's contract: wrapper scripts retry
/// `Io`, alert on `Corrupt`, and fix their invocation on `Usage`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The invocation itself is wrong (exit code 2).
    Usage(String),
    /// The OS refused a read or write (exit code 3).
    Io {
        /// File involved, or `-` for stdin.
        path: String,
        /// The underlying OS error.
        message: String,
    },
    /// A file was read fine but its contents are invalid — a torn or
    /// bit-flipped snapshot, typically (exit code 4).
    Corrupt {
        /// The offending file.
        path: String,
        /// The typed decode error.
        message: String,
    },
}

/// Exit code for [`CliError::Usage`].
pub const EXIT_USAGE: i32 = 2;
/// Exit code for [`CliError::Io`].
pub const EXIT_IO: i32 = 3;
/// Exit code for [`CliError::Corrupt`].
pub const EXIT_CORRUPT: i32 = 4;

impl CliError {
    /// The process exit code this error class maps to (never 0).
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => EXIT_USAGE,
            CliError::Io { .. } => EXIT_IO,
            CliError::Corrupt { .. } => EXIT_CORRUPT,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io { path, message } => write!(f, "{path}: {message}"),
            CliError::Corrupt { path, message } => write!(f, "{path}: corrupt: {message}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Subcommand: `top`, `diff`, `iceberg` or `inspect`.
    pub command: String,
    /// Top-k size.
    pub k: usize,
    /// Sketch rows.
    pub rows: usize,
    /// Sketch buckets.
    pub buckets: usize,
    /// Seed.
    pub seed: u64,
    /// Iceberg support threshold φ.
    pub phi: f64,
    /// Iceberg slack ε.
    pub eps: f64,
    /// Algorithm for `top`: count-sketch (default), space-saving, kps,
    /// lossy.
    pub algorithm: String,
    /// Write a state snapshot here after processing (`top` only).
    pub snapshot: Option<String>,
    /// Also write the snapshot after every N observed items (0 = only
    /// at the end; requires `--snapshot`).
    pub snapshot_every: usize,
    /// Restore state from this snapshot before processing (`top` only).
    pub resume: Option<String>,
    /// Ingestion worker threads (`top` with count-sketch only; 1 =
    /// sequential).
    pub threads: usize,
    /// Coordinator listen address (`serve` only).
    pub listen: Option<String>,
    /// Coordinator address to ship to (`ship` only).
    pub to: Option<String>,
    /// This agent's site index (`ship` only).
    pub site_id: Option<usize>,
    /// Total sites in the deployment (`serve`, `ship`, `shard`).
    pub sites: usize,
    /// Minimum validated reports for a usable merge (`serve`; 0 = all
    /// sites).
    pub quorum: usize,
    /// Collection deadline in milliseconds (`serve`).
    pub deadline_ms: u64,
    /// Milliseconds per logical coordinator/backoff tick.
    pub tick_ms: u64,
    /// Per-connection socket timeout in milliseconds.
    pub timeout_ms: u64,
    /// Link-fault spec for `ship` (`cut:BYTES` | `flip:FROM_BYTE` |
    /// `stall:MILLIS`), pre-validated at parse time.
    pub fault: Option<String>,
    /// Seed for the link-fault injector.
    pub fault_seed: u64,
    /// Output path prefix for `shard` (`PREFIX.I.txt` per site).
    pub out_prefix: Option<String>,
    /// Positional file arguments.
    pub files: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            command: String::new(),
            k: 10,
            rows: 5,
            buckets: 4096,
            seed: 1,
            phi: 0.01,
            eps: 0.002,
            algorithm: "count-sketch".into(),
            snapshot: None,
            snapshot_every: 0,
            resume: None,
            threads: 1,
            listen: None,
            to: None,
            site_id: None,
            sites: 1,
            quorum: 0,
            deadline_ms: 10_000,
            tick_ms: 50,
            timeout_ms: 5_000,
            fault: None,
            fault_seed: 1,
            out_prefix: None,
            files: Vec::new(),
        }
    }
}

/// Parses arguments (without the program name).
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    opts.command = it
        .next()
        .ok_or_else(|| {
            "missing subcommand (top | diff | iceberg | inspect | serve | ship | coordinate | shard)"
                .to_string()
        })?
        .clone();
    if !matches!(
        opts.command.as_str(),
        "top" | "diff" | "iceberg" | "inspect" | "serve" | "ship" | "coordinate" | "shard"
    ) {
        return Err(format!("unknown subcommand '{}'", opts.command));
    }
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "-k" => opts.k = flag_value("-k")?.parse().map_err(|e| format!("-k: {e}"))?,
            "-t" => opts.rows = flag_value("-t")?.parse().map_err(|e| format!("-t: {e}"))?,
            "-b" => opts.buckets = flag_value("-b")?.parse().map_err(|e| format!("-b: {e}"))?,
            "--seed" => {
                opts.seed = flag_value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--phi" => {
                opts.phi = flag_value("--phi")?
                    .parse()
                    .map_err(|e| format!("--phi: {e}"))?
            }
            "--eps" => {
                opts.eps = flag_value("--eps")?
                    .parse()
                    .map_err(|e| format!("--eps: {e}"))?
            }
            "--algorithm" => {
                opts.algorithm = flag_value("--algorithm")?.clone();
                if !matches!(
                    opts.algorithm.as_str(),
                    "count-sketch" | "space-saving" | "kps" | "lossy"
                ) {
                    return Err(format!("unknown algorithm '{}'", opts.algorithm));
                }
            }
            "--snapshot" => opts.snapshot = Some(flag_value("--snapshot")?.clone()),
            "--snapshot-every" => {
                opts.snapshot_every = flag_value("--snapshot-every")?
                    .parse()
                    .map_err(|e| format!("--snapshot-every: {e}"))?
            }
            "--resume" => opts.resume = Some(flag_value("--resume")?.clone()),
            "--threads" => {
                opts.threads = flag_value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--listen" => opts.listen = Some(flag_value("--listen")?.clone()),
            "--to" => opts.to = Some(flag_value("--to")?.clone()),
            "--site-id" => {
                opts.site_id = Some(
                    flag_value("--site-id")?
                        .parse()
                        .map_err(|e| format!("--site-id: {e}"))?,
                )
            }
            "--sites" => {
                opts.sites = flag_value("--sites")?
                    .parse()
                    .map_err(|e| format!("--sites: {e}"))?
            }
            "--quorum" => {
                opts.quorum = flag_value("--quorum")?
                    .parse()
                    .map_err(|e| format!("--quorum: {e}"))?
            }
            "--deadline-ms" => {
                opts.deadline_ms = flag_value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?
            }
            "--tick-ms" => {
                opts.tick_ms = flag_value("--tick-ms")?
                    .parse()
                    .map_err(|e| format!("--tick-ms: {e}"))?
            }
            "--timeout-ms" => {
                opts.timeout_ms = flag_value("--timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--timeout-ms: {e}"))?
            }
            "--fault" => {
                let spec = flag_value("--fault")?.clone();
                LinkFault::parse(&spec).map_err(|e| format!("--fault: {e}"))?;
                opts.fault = Some(spec);
            }
            "--fault-seed" => {
                opts.fault_seed = flag_value("--fault-seed")?
                    .parse()
                    .map_err(|e| format!("--fault-seed: {e}"))?
            }
            "--out-prefix" => opts.out_prefix = Some(flag_value("--out-prefix")?.clone()),
            other if other.starts_with('-') => return Err(format!("unknown flag '{other}'")),
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.k == 0 || opts.rows == 0 || opts.buckets == 0 {
        return Err("k, rows and buckets must be positive".into());
    }
    if (opts.snapshot.is_some() || opts.resume.is_some())
        && (opts.command != "top" || opts.algorithm != "count-sketch")
    {
        return Err("--snapshot/--resume require 'top' with the count-sketch algorithm".into());
    }
    if args.iter().any(|a| a == "--snapshot-every") {
        if opts.snapshot_every == 0 {
            return Err("--snapshot-every must be positive".into());
        }
        if opts.snapshot.is_none() {
            return Err("--snapshot-every needs --snapshot PATH for the periodic writes".into());
        }
    }
    if opts.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    if opts.threads > 1 && (opts.command != "top" || opts.algorithm != "count-sketch") {
        return Err("--threads > 1 requires 'top' with the count-sketch algorithm".into());
    }
    if opts.snapshot_every > 0 && opts.threads > 1 {
        // The sharded pool ingests the whole stream in one shot; there is
        // no mid-stream point at which a consistent snapshot exists.
        return Err("--snapshot-every requires --threads 1".into());
    }
    if opts.sites == 0 {
        return Err("--sites must be at least 1".into());
    }
    match opts.command.as_str() {
        "serve" => {
            if opts.listen.is_none() {
                return Err("serve needs --listen ADDR".into());
            }
            if opts.quorum > opts.sites {
                return Err(format!(
                    "--quorum {} exceeds --sites {}",
                    opts.quorum, opts.sites
                ));
            }
            if !opts.files.is_empty() {
                return Err("serve takes no input files".into());
            }
        }
        "ship" => {
            if opts.to.is_none() {
                return Err("ship needs --to ADDR".into());
            }
            let site = opts.site_id.ok_or("ship needs --site-id I")?;
            if site >= opts.sites {
                return Err(format!(
                    "--site-id {site} out of range for --sites {}",
                    opts.sites
                ));
            }
        }
        "shard" => {
            if opts.out_prefix.is_none() {
                return Err("shard needs --out-prefix P".into());
            }
        }
        _ => {
            if opts.fault.is_some() {
                return Err("--fault only applies to ship".into());
            }
        }
    }
    match opts.command.as_str() {
        "diff" if opts.files.len() != 2 => Err("diff needs exactly two files".into()),
        "inspect" if opts.files.len() != 1 => Err("inspect needs exactly one snapshot file".into()),
        "coordinate" if opts.files.is_empty() => {
            Err("coordinate needs at least one site file".into())
        }
        "top" | "iceberg" | "ship" | "shard" if opts.files.len() > 1 => {
            Err("at most one input file (or stdin)".into())
        }
        _ => Ok(opts),
    }
}

/// Tokenizes input text into a stream of items, remembering each key's
/// first textual form for display.
pub fn tokenize(text: &str) -> (Stream, HashMap<ItemKey, String>) {
    let mut labels = HashMap::new();
    let stream = text
        .split_whitespace()
        .map(|tok| {
            let key = ItemKey::of(tok);
            labels.entry(key).or_insert_with(|| tok.to_string());
            key
        })
        .collect();
    (stream, labels)
}

fn label(labels: &HashMap<ItemKey, String>, key: ItemKey) -> &str {
    labels.get(&key).map(String::as_str).unwrap_or("<?>")
}

fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError::Io {
        path: path.into(),
        message: e.to_string(),
    })
}

fn read_stdin() -> Result<String, CliError> {
    use std::io::Read;
    let mut buf = String::new();
    std::io::stdin()
        .read_to_string(&mut buf)
        .map_err(|e| CliError::Io {
            path: "-".into(),
            message: e.to_string(),
        })?;
    Ok(buf)
}

fn read_input(path: Option<&String>) -> Result<String, CliError> {
    match path {
        Some(p) => read_file(p),
        None => read_stdin(),
    }
}

/// Parses, dispatches and runs a full invocation (including file/stdin
/// I/O); the binary maps the error to its exit code.
pub fn run(opts: &Options) -> Result<String, CliError> {
    match opts.command.as_str() {
        "top" => {
            let text = read_input(opts.files.first())?;
            run_top(opts, &text)
        }
        "diff" => {
            let t1 = read_file(&opts.files[0])?;
            let t2 = read_file(&opts.files[1])?;
            Ok(run_diff(opts, &t1, &t2))
        }
        "iceberg" => {
            let text = read_input(opts.files.first())?;
            Ok(run_iceberg(opts, &text))
        }
        "inspect" => run_inspect(opts),
        "serve" => run_serve(opts),
        "ship" => {
            let text = read_input(opts.files.first())?;
            run_ship(opts, &text)
        }
        "coordinate" => run_coordinate(opts),
        "shard" => {
            let text = read_input(opts.files.first())?;
            run_shard(opts, &text)
        }
        other => Err(CliError::Usage(format!("unknown subcommand '{other}'"))),
    }
}

/// Runs `fi top` over input text; returns the report. With
/// `opts.resume` the processor state is restored from a snapshot first
/// (a torn or bit-flipped file yields [`CliError::Corrupt`], never a
/// panic or silently wrong counts); with `opts.snapshot` the final
/// state is persisted atomically afterwards.
pub fn run_top(opts: &Options, text: &str) -> Result<String, CliError> {
    use cs_baselines::{KpsFrequent, LossyCounting, SpaceSaving, StreamSummary};
    let (stream, labels) = tokenize(text);
    let items: Vec<(ItemKey, i64)> = match opts.algorithm.as_str() {
        "count-sketch" => {
            let restored = match &opts.resume {
                Some(path) => {
                    let bytes = read_snapshot_file(Path::new(path)).map_err(|e| CliError::Io {
                        path: path.clone(),
                        message: e.to_string(),
                    })?;
                    Some(
                        <ApproxTopProcessor>::from_snapshot_bytes(&bytes).map_err(|e| {
                            CliError::Corrupt {
                                path: path.clone(),
                                message: e.to_string(),
                            }
                        })?,
                    )
                }
                None => None,
            };
            let p = if opts.threads > 1 {
                run_top_parallel(opts, &stream, &labels, restored)?
            } else {
                let mut p = restored.unwrap_or_else(|| {
                    ApproxTopProcessor::new(
                        SketchParams::new(opts.rows, opts.buckets),
                        opts.k,
                        opts.seed,
                    )
                });
                match (&opts.snapshot, opts.snapshot_every) {
                    (Some(path), every) if every > 0 => {
                        // Periodic persistence: after every full window of
                        // `every` items the state hits disk through the same
                        // atomic tmp-then-rename path as the final write, so
                        // a crash loses at most `every` items of progress.
                        // The tail shorter than a window is covered by the
                        // unconditional final write below.
                        for chunk in stream.as_slice().chunks(every) {
                            p.observe_batch(chunk);
                            if chunk.len() == every {
                                write_snapshot_file(Path::new(path), &p.to_snapshot_bytes())
                                    .map_err(|e| CliError::Io {
                                        path: path.clone(),
                                        message: e.to_string(),
                                    })?;
                            }
                        }
                    }
                    _ => p.observe_stream(&stream),
                }
                p
            };
            if let Some(path) = &opts.snapshot {
                write_snapshot_file(Path::new(path), &p.to_snapshot_bytes()).map_err(|e| {
                    CliError::Io {
                        path: path.clone(),
                        message: e.to_string(),
                    }
                })?;
            }
            p.result().items
        }
        other => {
            let mut alg: Box<dyn StreamSummary> = match other {
                "space-saving" => Box::new(SpaceSaving::new(4 * opts.k)),
                "kps" => Box::new(KpsFrequent::with_capacity(4 * opts.k)),
                "lossy" => Box::new(LossyCounting::new((1.0 / (4 * opts.k) as f64).min(0.5))),
                _ => unreachable!("parse_args validates the algorithm"),
            };
            alg.process_stream(&stream);
            alg.candidates()
                .into_iter()
                .take(opts.k)
                .map(|(key, est)| (key, est as i64))
                .collect()
        }
    };
    let mut out = format!(
        "# top-{} of {} occurrences ({} distinct seen, algorithm: {})\n",
        opts.k,
        stream.len(),
        labels.len(),
        opts.algorithm
    );
    for (key, est) in &items {
        out.push_str(&format!("{:>10}  {}\n", est, label(&labels, *key)));
    }
    Ok(out)
}

/// The `--threads > 1` ingestion path: sketch the stream through the
/// sharded worker pool ([`SketchPool`]), merge any resumed state in, and
/// resolve the top-k by re-estimating the candidate set against the
/// merged sketch.
///
/// Determinism: the pool-merged sketch is bit-identical to the
/// sequential sketch, the candidate set (every distinct token seen this
/// session, plus any resumed tracked keys) does not depend on the thread
/// count, and candidates are resolved in sorted-key order — so the
/// report and any written snapshot are byte-identical for every
/// `--threads N > 1`.
fn run_top_parallel(
    opts: &Options,
    stream: &Stream,
    labels: &HashMap<ItemKey, String>,
    restored: Option<ApproxTopProcessor>,
) -> Result<ApproxTopProcessor, CliError> {
    let params = SketchParams::new(opts.rows, opts.buckets);
    let mut pool = SketchPool::new(params, opts.seed, opts.threads);
    pool.ingest_stream(stream);
    let mut merged = pool.finish();
    let mut candidates: Vec<ItemKey> = labels.keys().copied().collect();
    if let Some(p) = restored {
        let (prior_sketch, prior_tracker, _) = p.into_parts();
        match merged.merge(&prior_sketch) {
            Ok(()) => {}
            Err(CoreError::CounterSaturated { .. }) => merged
                .merge_saturating(&prior_sketch)
                .expect("dimensions already validated by the failed strict merge"),
            Err(e) => {
                // The snapshot's sketch geometry/seed wins over -t/-b in
                // the sequential path; in the parallel path the pool was
                // already built from the flags, so a mismatch is fatal.
                return Err(CliError::Usage(format!(
                    "--resume snapshot incompatible with sketch options: {e}"
                )));
            }
        }
        candidates.extend(prior_tracker.items_desc().into_iter().map(|(k, _)| k));
    }
    candidates.sort_unstable();
    candidates.dedup();
    // One batched kernel pass over the candidate set instead of a scalar
    // probe per key; the kernel is bit-identical to the scalar estimate,
    // so the resolved tracker (and report) are unchanged.
    let estimates = merged.estimate_batch(&candidates);
    let mut tracker = TopKTracker::new(opts.k);
    for (&key, &est) in candidates.iter().zip(&estimates) {
        tracker.offer(key, est);
    }
    Ok(ApproxTopProcessor::from_parts(
        merged,
        tracker,
        HeapPolicy::default(),
    ))
}

/// Runs `fi inspect` over a snapshot file; returns a human-readable
/// summary of the header, sketch geometry, per-row health, the top
/// `opts.k` counters by magnitude and (for processor snapshots) the
/// tracked entries. A missing file is [`CliError::Io`]; a torn or
/// bit-flipped one is [`CliError::Corrupt`].
pub fn run_inspect(opts: &Options) -> Result<String, CliError> {
    let path = &opts.files[0];
    let bytes = read_snapshot_file(Path::new(path)).map_err(|e| CliError::Io {
        path: path.clone(),
        message: e.to_string(),
    })?;
    let info = inspect_snapshot_bytes(&bytes, opts.k).map_err(|e| CliError::Corrupt {
        path: path.clone(),
        message: e.to_string(),
    })?;
    let combiner = match info.combiner {
        Combiner::Median => "median",
        Combiner::Mean => "mean",
        Combiner::TrimmedMean => "trimmed-mean",
    };
    let mut out = format!(
        "# {path}: CSNP v1 {} snapshot ({} bytes)\n",
        info.kind, info.total_bytes
    );
    out.push_str(&format!(
        "sketch:     {} rows x {} buckets, seed {}, combiner {}\n",
        info.rows, info.buckets, info.seed, combiner
    ));
    let health: String = info
        .row_saturated
        .iter()
        .map(|&n| if n == 0 { '1' } else { '0' })
        .collect();
    let clean = info.row_saturated.iter().filter(|&&n| n == 0).count();
    out.push_str(&format!(
        "health:     [{}] {}/{} rows clean, {} saturated cells\n",
        health,
        clean,
        info.rows,
        info.saturated_cells()
    ));
    if let (Some(policy), Some(capacity)) = (info.policy, info.tracker_capacity) {
        let policy = match policy {
            HeapPolicy::IncrementTracked => "increment-tracked",
            HeapPolicy::AlwaysReEstimate => "always-re-estimate",
        };
        out.push_str(&format!(
            "tracker:    {} of {} entries, policy {}\n",
            info.tracked.len(),
            capacity,
            policy
        ));
        for (key, value) in &info.tracked {
            out.push_str(&format!("{value:>12}  key {:#018x}\n", key.raw()));
        }
    }
    out.push_str(&format!("# top {} counters by |value|\n", opts.k));
    for &(row, bucket, value) in &info.top_counters {
        out.push_str(&format!("{value:>+12}  row {row}  bucket {bucket}\n"));
    }
    Ok(out)
}

/// Builds a [`ServeConfig`] from parsed options. `--quorum 0` (the
/// default) means every site must report; `--deadline-ms` is converted
/// to logical ticks at the configured tick rate.
fn serve_config(opts: &Options) -> ServeConfig {
    let quorum = if opts.quorum == 0 {
        opts.sites
    } else {
        opts.quorum
    };
    let mut config = ServeConfig::new(
        opts.sites,
        quorum,
        SketchParams::new(opts.rows, opts.buckets),
        opts.seed,
    );
    config.tick_ms = opts.tick_ms.max(1);
    config.deadline_ticks = (opts.deadline_ms / config.tick_ms).max(1);
    config.timeout_ms = opts.timeout_ms;
    config
}

/// Runs `fi serve`: binds the coordinator, collects site reports over
/// the CSWP transport until quorum-or-deadline, and returns the merged
/// top-k report (with `# excluded` lines for any dropped sites). The
/// listening address goes to stderr before blocking so wrapper scripts
/// can wait for readiness. A finished-below-quorum run maps to
/// [`CliError::Corrupt`] (the merge is unusable), socket failures to
/// [`CliError::Io`].
pub fn run_serve(opts: &Options) -> Result<String, CliError> {
    let addr = opts.listen.as_deref().expect("parse_args requires --listen");
    let server = CoordinatorServer::bind(addr, serve_config(opts)).map_err(|e| CliError::Io {
        path: addr.into(),
        message: e.to_string(),
    })?;
    let local = server.local_addr().map_err(|e| CliError::Io {
        path: addr.into(),
        message: e.to_string(),
    })?;
    eprintln!(
        "# coordinator listening on {local}: {} site(s), quorum {}",
        opts.sites,
        serve_config(opts).quorum
    );
    let outcome = server.run().map_err(|e| match e {
        NetError::QuorumNotMet { .. } => CliError::Corrupt {
            path: addr.into(),
            message: e.to_string(),
        },
        other => CliError::Io {
            path: addr.into(),
            message: other.to_string(),
        },
    })?;
    Ok(render_report(
        &outcome.sketch,
        opts.k,
        &outcome.report.excluded,
    ))
}

/// Runs `fi ship` over input text: sketches the site's local stream,
/// ships the report to the coordinator with retry/backoff, and returns
/// a one-line summary. `--fault SPEC` routes the connection through a
/// misbehaving [`LinkFault`] link for fault-matrix experiments.
pub fn run_ship(opts: &Options, text: &str) -> Result<String, CliError> {
    let to = opts.to.as_deref().expect("parse_args requires --to");
    let site_id = opts.site_id.expect("parse_args requires --site-id");
    let (stream, _) = tokenize(text);
    let report = site_report(
        &stream,
        opts.k,
        SketchParams::new(opts.rows, opts.buckets),
        opts.seed,
    );
    let mut agent = SiteAgent::new(site_id, opts.sites);
    agent.tick_ms = opts.tick_ms.max(1);
    agent.timeout_ms = opts.timeout_ms;
    agent.fault_seed = opts.fault_seed;
    if let Some(spec) = &opts.fault {
        agent.fault = Some(LinkFault::parse(spec).map_err(CliError::Usage)?);
    }
    let outcome = agent.ship(to, &report).map_err(|e| CliError::Io {
        path: to.into(),
        message: e.to_string(),
    })?;
    let verdict = match outcome {
        ShipOutcome::Accepted => "accepted",
        ShipOutcome::Excluded => "excluded",
    };
    Ok(format!(
        "# site {site_id}: shipped {} occurrences ({} candidates) to {to}: {verdict}\n",
        report.local_n,
        report.candidates.len()
    ))
}

/// Runs `fi coordinate` over per-site item files: the in-process
/// reference merge ([`DistributedSketch::coordinate`]) whose output the
/// wire path (`serve` + `ship` over the same files, site `i` shipping
/// file `i`) must reproduce byte-for-byte.
pub fn run_coordinate(opts: &Options) -> Result<String, CliError> {
    let params = SketchParams::new(opts.rows, opts.buckets);
    let mut reports = Vec::with_capacity(opts.files.len());
    for path in &opts.files {
        let text = read_file(path)?;
        let (stream, _) = tokenize(&text);
        reports.push(site_report(&stream, opts.k, params, opts.seed));
    }
    let merged = DistributedSketch::coordinate(&reports)
        .map_err(|e| CliError::Usage(format!("coordinate: {e}")))?;
    Ok(render_report(&merged, opts.k, &[]))
}

/// Runs `fi shard` over input text: splits the items into `--sites`
/// per-site files (`PREFIX.I.txt`, one token per line) by key shard, so
/// every occurrence of a token lands on one site — the same
/// [`cs_hash::shard_of`] routing the parallel ingestion pool uses.
pub fn run_shard(opts: &Options, text: &str) -> Result<String, CliError> {
    let prefix = opts
        .out_prefix
        .as_deref()
        .expect("parse_args requires --out-prefix");
    let mut shards: Vec<String> = vec![String::new(); opts.sites];
    let mut counts = vec![0usize; opts.sites];
    for tok in text.split_whitespace() {
        let site = cs_hash::shard_of(ItemKey::of(tok), opts.sites);
        shards[site].push_str(tok);
        shards[site].push('\n');
        counts[site] += 1;
    }
    let mut out = String::new();
    for (i, content) in shards.iter().enumerate() {
        let path = format!("{prefix}.{i}.txt");
        std::fs::write(&path, content).map_err(|e| CliError::Io {
            path: path.clone(),
            message: e.to_string(),
        })?;
        out.push_str(&format!("{path}: {} occurrences\n", counts[i]));
    }
    Ok(out)
}

/// Runs `fi diff` over two input texts; returns the report.
pub fn run_diff(opts: &Options, text1: &str, text2: &str) -> String {
    let (s1, mut labels) = tokenize(text1);
    let (s2, labels2) = tokenize(text2);
    labels.extend(labels2);
    let result = max_change(
        &s1,
        &s2,
        opts.k,
        4 * opts.k,
        SketchParams::new(opts.rows, opts.buckets),
        opts.seed,
    );
    let mut out = format!(
        "# top-{} changes ({} -> {} occurrences)\n",
        opts.k,
        s1.len(),
        s2.len()
    );
    for item in &result.items {
        out.push_str(&format!(
            "{:>+10}  {}\n",
            item.exact_change,
            label(&labels, item.key)
        ));
    }
    out
}

/// Runs `fi iceberg` over input text; returns the report.
pub fn run_iceberg(opts: &Options, text: &str) -> String {
    let (stream, labels) = tokenize(text);
    let mut p = IcebergProcessor::new(
        SketchParams::new(opts.rows, opts.buckets),
        opts.phi,
        opts.eps,
        2,
        opts.seed,
    );
    p.observe_stream(&stream);
    let result = p.result();
    let mut out = format!(
        "# items above {:.2}% of {} occurrences (threshold {})\n",
        opts.phi * 100.0,
        result.n,
        result.threshold
    );
    for (key, est) in &result.items {
        out.push_str(&format!("{:>10}  {}\n", est, label(&labels, *key)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_defaults() {
        let o = parse_args(&args("top")).unwrap();
        assert_eq!(o.command, "top");
        assert_eq!(o.k, 10);
        assert!(o.files.is_empty());
    }

    #[test]
    fn parse_flags_and_files() {
        let o = parse_args(&args("diff -k 3 -t 7 -b 1024 --seed 9 a.txt b.txt")).unwrap();
        assert_eq!(o.k, 3);
        assert_eq!(o.rows, 7);
        assert_eq!(o.buckets, 1024);
        assert_eq!(o.seed, 9);
        assert_eq!(o.files, vec!["a.txt", "b.txt"]);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&args("bogus")).is_err());
        assert!(parse_args(&args("top --wat")).is_err());
        assert!(parse_args(&args("top -k")).is_err());
        assert!(parse_args(&args("top -k zero")).is_err());
        assert!(parse_args(&args("top -k 0")).is_err());
        assert!(parse_args(&args("diff only-one.txt")).is_err());
        assert!(parse_args(&args("top a.txt b.txt")).is_err());
    }

    #[test]
    fn tokenize_counts_and_labels() {
        let (stream, labels) = tokenize("a b a\nc a");
        assert_eq!(stream.len(), 5);
        assert_eq!(labels.len(), 3);
        assert_eq!(labels[&ItemKey::of("a")], "a");
    }

    #[test]
    fn top_finds_dominant_token() {
        let opts = Options {
            command: "top".into(),
            k: 2,
            ..Default::default()
        };
        let text = "x ".repeat(100) + &"y ".repeat(30) + "z";
        let report = run_top(&opts, &text).unwrap();
        let first_line = report.lines().nth(1).unwrap();
        assert!(first_line.contains('x'), "{report}");
        assert!(first_line.trim().starts_with("100"), "{report}");
    }

    #[test]
    fn diff_reports_signed_changes() {
        let opts = Options {
            command: "diff".into(),
            k: 2,
            ..Default::default()
        };
        let day1 = "old ".repeat(50) + &"stable ".repeat(20);
        let day2 = "new ".repeat(60) + &"stable ".repeat(20);
        let report = run_diff(&opts, &day1, &day2);
        assert!(report.contains("+60  new"), "{report}");
        assert!(report.contains("-50  old"), "{report}");
    }

    #[test]
    fn iceberg_filters_by_phi() {
        let opts = Options {
            command: "iceberg".into(),
            phi: 0.3,
            eps: 0.05,
            ..Default::default()
        };
        let text = "big ".repeat(60) + &"small ".repeat(5) + &"mid ".repeat(35);
        let report = run_iceberg(&opts, &text);
        assert!(report.contains("big"));
        assert!(report.contains("mid"));
        assert!(!report.contains("small"), "{report}");
    }

    #[test]
    fn empty_input_is_graceful() {
        let opts = Options {
            command: "top".into(),
            ..Default::default()
        };
        let report = run_top(&opts, "").unwrap();
        assert!(report.contains("top-10 of 0 occurrences"));
    }

    #[test]
    fn parse_snapshot_and_resume_flags() {
        let o = parse_args(&args("top --snapshot s.csnp --resume r.csnp in.txt")).unwrap();
        assert_eq!(o.snapshot.as_deref(), Some("s.csnp"));
        assert_eq!(o.resume.as_deref(), Some("r.csnp"));
        // Only `top` with the count-sketch algorithm has resumable state.
        assert!(parse_args(&args("diff --snapshot s.csnp a b")).is_err());
        assert!(parse_args(&args("top --algorithm lossy --resume r.csnp")).is_err());
        assert!(parse_args(&args("top --snapshot")).is_err());
    }

    #[test]
    fn parse_threads_flag() {
        let o = parse_args(&args("top --threads 4")).unwrap();
        assert_eq!(o.threads, 4);
        assert_eq!(parse_args(&args("top")).unwrap().threads, 1);
        assert!(parse_args(&args("top --threads 0")).is_err());
        assert!(parse_args(&args("top --threads nope")).is_err());
        // Only the count-sketch `top` path is sharded.
        assert!(parse_args(&args("diff --threads 2 a b")).is_err());
        assert!(parse_args(&args("iceberg --threads 2")).is_err());
        assert!(parse_args(&args("top --algorithm lossy --threads 2")).is_err());
        // threads = 1 is the sequential default, allowed anywhere.
        assert!(parse_args(&args("iceberg --threads 1")).is_ok());
    }

    #[test]
    fn threaded_top_reports_match_sequential() {
        let text = "x ".repeat(100) + &"y ".repeat(30) + &"z ".repeat(7) + "w";
        let mut opts = Options {
            command: "top".into(),
            k: 3,
            ..Default::default()
        };
        let sequential = run_top(&opts, &text).unwrap();
        for threads in [2, 4, 8] {
            opts.threads = threads;
            let report = run_top(&opts, &text).unwrap();
            assert_eq!(report, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn threaded_snapshot_resume_is_thread_count_invariant() {
        let dir = std::env::temp_dir().join(format!("fi-cli-threads-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let text1 = "x ".repeat(60) + &"y ".repeat(25);
        let text2 = "x ".repeat(40) + &"y ".repeat(5) + &"z ".repeat(33);

        // Snapshots written at different thread counts are byte-identical:
        // the pool-merged sketch is bit-identical to sequential and the
        // tracker resolution is thread-count-invariant.
        let mut snaps = Vec::new();
        for threads in [2, 4] {
            let snap = dir
                .join(format!("t{threads}.csnp"))
                .to_string_lossy()
                .into_owned();
            let opts = Options {
                command: "top".into(),
                k: 2,
                threads,
                snapshot: Some(snap.clone()),
                ..Default::default()
            };
            run_top(&opts, &text1).unwrap();
            snaps.push(std::fs::read(&snap).unwrap());
        }
        assert_eq!(snaps[0], snaps[1], "snapshot bytes differ across thread counts");

        // Resuming a threaded snapshot — at any thread count, including
        // sequentially — continues the count across both sessions.
        let snap = dir.join("t2.csnp").to_string_lossy().into_owned();
        for threads in [1, 2, 4] {
            let opts = Options {
                command: "top".into(),
                k: 2,
                threads,
                resume: Some(snap.clone()),
                ..Default::default()
            };
            let report = run_top(&opts, &text2).unwrap();
            let first = report.lines().nth(1).unwrap();
            assert!(
                first.contains("100") && first.contains('x'),
                "threads = {threads}: {report}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_snapshot_every_flag() {
        let o = parse_args(&args("top --snapshot s.csnp --snapshot-every 500")).unwrap();
        assert_eq!(o.snapshot_every, 500);
        assert_eq!(parse_args(&args("top")).unwrap().snapshot_every, 0);
        assert!(parse_args(&args("top --snapshot s.csnp --snapshot-every 0")).is_err());
        assert!(parse_args(&args("top --snapshot-every 500")).is_err());
        assert!(parse_args(&args("top --snapshot s --snapshot-every 5 --threads 2")).is_err());
        assert!(parse_args(&args("diff --snapshot-every 5 a b")).is_err());
    }

    #[test]
    fn parse_inspect_subcommand() {
        let o = parse_args(&args("inspect -k 5 state.csnp")).unwrap();
        assert_eq!(o.command, "inspect");
        assert_eq!(o.k, 5);
        assert_eq!(o.files, vec!["state.csnp"]);
        assert!(parse_args(&args("inspect")).is_err());
        assert!(parse_args(&args("inspect a.csnp b.csnp")).is_err());
    }

    #[test]
    fn snapshot_every_checkpoints_match_one_shot() {
        let dir = std::env::temp_dir().join(format!("fi-cli-every-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("every.csnp").to_string_lossy().into_owned();
        let text = "x ".repeat(70) + &"y ".repeat(25) + &"z ".repeat(8);

        let opts = Options {
            command: "top".into(),
            k: 2,
            snapshot: Some(snap.clone()),
            snapshot_every: 13, // deliberately not a divisor of the length
            ..Default::default()
        };
        let report = run_top(&opts, &text).unwrap();
        let oneshot_opts = Options {
            command: "top".into(),
            k: 2,
            snapshot: Some(dir.join("once.csnp").to_string_lossy().into_owned()),
            ..Default::default()
        };
        let oneshot = run_top(&oneshot_opts, &text).unwrap();
        // Chunked observation is bit-identical to one-shot: same report,
        // and the final checkpoint equals the end-of-run snapshot.
        assert_eq!(report, oneshot);
        assert_eq!(
            std::fs::read(&snap).unwrap(),
            std::fs::read(dir.join("once.csnp")).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inspect_summarizes_a_snapshot() {
        let dir = std::env::temp_dir().join(format!("fi-cli-inspect-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("state.csnp").to_string_lossy().into_owned();
        let opts = Options {
            command: "top".into(),
            k: 3,
            snapshot: Some(snap.clone()),
            ..Default::default()
        };
        run_top(&opts, &("hot ".repeat(90) + &"cold ".repeat(4))).unwrap();

        let inspect = parse_args(&args(&format!("inspect -k 4 {snap}"))).unwrap();
        let report = run(&inspect).unwrap();
        assert!(report.contains("processor snapshot"), "{report}");
        assert!(report.contains("5 rows x 4096 buckets"), "{report}");
        assert!(report.contains("combiner median"), "{report}");
        assert!(report.contains("5/5 rows clean"), "{report}");
        assert!(report.contains("policy increment-tracked"), "{report}");
        // The dominant token's count shows up among the tracked entries.
        assert!(report.contains("90"), "{report}");

        // Corruption is the typed Corrupt error, not a panic.
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&snap, &bytes).unwrap();
        match run(&inspect) {
            Err(e @ CliError::Corrupt { .. }) => assert_eq!(e.exit_code(), EXIT_CORRUPT),
            other => panic!("expected Corrupt error, got {other:?}"),
        }
        // A missing snapshot is an I/O error.
        let gone = parse_args(&args("inspect /nonexistent/fi-inspect.csnp")).unwrap();
        match run(&gone) {
            Err(e @ CliError::Io { .. }) => assert_eq!(e.exit_code(), EXIT_IO),
            other => panic!("expected Io error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_serve_subcommand() {
        let o = parse_args(&args(
            "serve --listen 127.0.0.1:7700 --sites 3 --quorum 2 --deadline-ms 2000 --tick-ms 5",
        ))
        .unwrap();
        assert_eq!(o.command, "serve");
        assert_eq!(o.listen.as_deref(), Some("127.0.0.1:7700"));
        assert_eq!((o.sites, o.quorum), (3, 2));
        assert_eq!((o.deadline_ms, o.tick_ms), (2000, 5));
        // Quorum defaults to all sites.
        let all = parse_args(&args("serve --listen 127.0.0.1:0 --sites 3")).unwrap();
        assert_eq!(serve_config(&all).quorum, 3);
        assert!(parse_args(&args("serve --sites 3")).is_err());
        assert!(parse_args(&args("serve --listen a --sites 2 --quorum 3")).is_err());
        assert!(parse_args(&args("serve --listen a --sites 0")).is_err());
        assert!(parse_args(&args("serve --listen a --sites 1 f.txt")).is_err());
    }

    #[test]
    fn parse_ship_subcommand() {
        let o = parse_args(&args(
            "ship --to 127.0.0.1:7700 --site-id 1 --sites 3 --fault flip:100 --fault-seed 9 s.txt",
        ))
        .unwrap();
        assert_eq!(o.command, "ship");
        assert_eq!(o.to.as_deref(), Some("127.0.0.1:7700"));
        assert_eq!(o.site_id, Some(1));
        assert_eq!(o.fault.as_deref(), Some("flip:100"));
        assert_eq!(o.fault_seed, 9);
        assert!(parse_args(&args("ship --site-id 0")).is_err());
        assert!(parse_args(&args("ship --to a")).is_err());
        assert!(parse_args(&args("ship --to a --site-id 3 --sites 3")).is_err());
        // Fault specs are validated at parse time, and only for ship.
        assert!(parse_args(&args("ship --to a --site-id 0 --fault melt:3")).is_err());
        assert!(parse_args(&args("top --fault cut:10")).is_err());
    }

    #[test]
    fn parse_coordinate_and_shard_subcommands() {
        let o = parse_args(&args("coordinate -k 5 a.txt b.txt c.txt")).unwrap();
        assert_eq!(o.command, "coordinate");
        assert_eq!(o.files.len(), 3);
        assert!(parse_args(&args("coordinate")).is_err());

        let s = parse_args(&args("shard --sites 4 --out-prefix site in.txt")).unwrap();
        assert_eq!(s.sites, 4);
        assert_eq!(s.out_prefix.as_deref(), Some("site"));
        assert!(parse_args(&args("shard --sites 4")).is_err());
        assert!(parse_args(&args("shard --out-prefix p a.txt b.txt")).is_err());
    }

    #[test]
    fn shard_then_coordinate_recovers_the_global_top_k() {
        let dir = std::env::temp_dir().join(format!("fi-cli-shard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("site").to_string_lossy().into_owned();
        let text = "hot ".repeat(90) + &"warm ".repeat(40) + &"cold ".repeat(5);

        let shard_opts = Options {
            command: "shard".into(),
            sites: 3,
            out_prefix: Some(prefix.clone()),
            ..Default::default()
        };
        let summary = run_shard(&shard_opts, &text).unwrap();
        assert_eq!(summary.lines().count(), 3, "{summary}");

        let coord_opts = Options {
            command: "coordinate".into(),
            k: 2,
            files: (0..3).map(|i| format!("{prefix}.{i}.txt")).collect(),
            ..Default::default()
        };
        let report = run_coordinate(&coord_opts).unwrap();
        assert!(
            report.starts_with("# top-2 of 135 occurrences across 3 site(s)"),
            "{report}"
        );
        let first = report.lines().nth(1).unwrap();
        assert!(first.trim().starts_with("90"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_and_ship_over_loopback_match_coordinate() {
        let dir = std::env::temp_dir().join(format!("fi-cli-net-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("site").to_string_lossy().into_owned();
        let text = "hot ".repeat(80) + &"warm ".repeat(30) + &"cold ".repeat(9);
        let shard_opts = Options {
            command: "shard".into(),
            sites: 2,
            out_prefix: Some(prefix.clone()),
            ..Default::default()
        };
        run_shard(&shard_opts, &text).unwrap();

        // Pre-bind on port 0 to learn a free port, matching the CI flow.
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);
        let serve_opts = Options {
            command: "serve".into(),
            k: 2,
            listen: Some(addr.clone()),
            sites: 2,
            tick_ms: 2,
            deadline_ms: 5_000,
            ..Default::default()
        };
        let server = std::thread::spawn(move || run_serve(&serve_opts));
        let mut shippers = Vec::new();
        for i in 0..2 {
            let text = std::fs::read_to_string(format!("{prefix}.{i}.txt")).unwrap();
            let opts = Options {
                command: "ship".into(),
                k: 2,
                to: Some(addr.clone()),
                site_id: Some(i),
                sites: 2,
                tick_ms: 1,
                ..Default::default()
            };
            shippers.push(std::thread::spawn(move || run_ship(&opts, &text)));
        }
        for s in shippers {
            let line = s.join().unwrap().unwrap();
            assert!(line.contains("accepted"), "{line}");
        }
        let served = server.join().unwrap().unwrap();

        let coord_opts = Options {
            command: "coordinate".into(),
            k: 2,
            files: (0..2).map(|i| format!("{prefix}.{i}.txt")).collect(),
            ..Default::default()
        };
        assert_eq!(
            served,
            run_coordinate(&coord_opts).unwrap(),
            "wire report must be byte-identical to the in-process merge"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let codes = [
            CliError::Usage("x".into()).exit_code(),
            CliError::Io {
                path: "f".into(),
                message: "m".into(),
            }
            .exit_code(),
            CliError::Corrupt {
                path: "f".into(),
                message: "m".into(),
            }
            .exit_code(),
        ];
        assert!(codes.iter().all(|&c| c != 0 && c != 1));
        let mut unique = codes.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len(), "codes collide: {codes:?}");
    }

    #[test]
    fn cli_error_display_names_the_file() {
        let e = CliError::Corrupt {
            path: "state.csnp".into(),
            message: "checksum mismatch".into(),
        };
        let msg = e.to_string();
        assert!(
            msg.contains("state.csnp") && msg.contains("corrupt"),
            "{msg}"
        );
    }

    #[test]
    fn run_reports_missing_file_as_io_error() {
        let opts = parse_args(&args("top /nonexistent/fi-test-input.txt")).unwrap();
        match run(&opts) {
            Err(CliError::Io { path, .. }) => assert!(path.contains("nonexistent")),
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_then_resume_continues_the_count() {
        let dir = std::env::temp_dir().join(format!("fi-cli-snapshot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("state.csnp").to_string_lossy().into_owned();

        // Session 1: count and persist.
        let mut opts = Options {
            command: "top".into(),
            k: 2,
            snapshot: Some(snap.clone()),
            ..Default::default()
        };
        run_top(&opts, &"x ".repeat(60)).unwrap();

        // Session 2: resume and keep counting; totals span both runs.
        opts.snapshot = None;
        opts.resume = Some(snap.clone());
        let report = run_top(&opts, &"x ".repeat(40)).unwrap();
        assert!(report.contains("100"), "expected combined count: {report}");

        // One uninterrupted session over everything agrees.
        let oneshot = run_top(
            &Options {
                command: "top".into(),
                k: 2,
                ..Default::default()
            },
            &"x ".repeat(100),
        )
        .unwrap();
        assert_eq!(report.lines().nth(1), oneshot.lines().nth(1));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_from_corrupt_snapshot_is_a_typed_error() {
        let dir = std::env::temp_dir().join(format!("fi-cli-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("state.csnp").to_string_lossy().into_owned();

        let mut opts = Options {
            command: "top".into(),
            snapshot: Some(snap.clone()),
            ..Default::default()
        };
        run_top(&opts, "a b c").unwrap();

        // Flip one byte mid-file: detection, not a panic or bad counts.
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&snap, &bytes).unwrap();

        opts.snapshot = None;
        opts.resume = Some(snap.clone());
        match run_top(&opts, "d e f") {
            Err(e @ CliError::Corrupt { .. }) => assert_eq!(e.exit_code(), EXIT_CORRUPT),
            other => panic!("expected Corrupt error, got {other:?}"),
        }

        // A missing snapshot is an I/O error, distinct from corruption.
        opts.resume = Some(dir.join("absent.csnp").to_string_lossy().into_owned());
        match run_top(&opts, "d e f") {
            Err(e @ CliError::Io { .. }) => assert_eq!(e.exit_code(), EXIT_IO),
            other => panic!("expected Io error, got {other:?}"),
        }

        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod algorithm_tests {
    use super::*;

    #[test]
    fn parse_algorithm_flag() {
        let args: Vec<String> = "top --algorithm space-saving"
            .split_whitespace()
            .map(String::from)
            .collect();
        let o = parse_args(&args).unwrap();
        assert_eq!(o.algorithm, "space-saving");
        let bad: Vec<String> = "top --algorithm bogus"
            .split_whitespace()
            .map(String::from)
            .collect();
        assert!(parse_args(&bad).is_err());
    }

    #[test]
    fn every_algorithm_finds_the_heavy_token() {
        let text = "hot ".repeat(200) + &"cold ".repeat(10) + "once";
        for alg in ["count-sketch", "space-saving", "kps", "lossy"] {
            let opts = Options {
                command: "top".into(),
                k: 1,
                algorithm: alg.into(),
                ..Default::default()
            };
            let report = run_top(&opts, &text).unwrap();
            let first = report.lines().nth(1).unwrap_or("");
            assert!(first.contains("hot"), "{alg}: {report}");
        }
    }
}
