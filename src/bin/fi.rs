//! `fi` — frequent items from the command line.
//!
//! ```sh
//! fi top -k 10 access.log            # most frequent tokens
//! fi diff -k 10 day1.txt day2.txt    # biggest frequency changes (§4.2)
//! fi iceberg --phi 0.01 access.log   # everything above 1% of traffic
//! cat stream | fi top                # reads stdin when no file given
//! fi top --snapshot s.csnp log.1     # persist state, then later
//! fi top --resume s.csnp log.2       # continue counting across runs
//! fi top --snapshot s.csnp --snapshot-every 10000 log  # checkpoint as you go
//! fi top --threads 4 access.log      # sharded multi-core ingestion
//! fi inspect s.csnp                  # what's inside a snapshot?
//! ```
//!
//! Exit codes: 0 success, 2 bad invocation, 3 I/O failure, 4 corrupt
//! input (e.g. a torn or bit-flipped snapshot).

use frequent_items::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: fi <top|diff|iceberg|inspect> [-k N] [-t ROWS] [-b BUCKETS] [--seed S] \
                 [--phi P] [--eps E] [--algorithm A] [--threads N] [--snapshot PATH] \
                 [--snapshot-every N] [--resume PATH] [FILE...]"
            );
            std::process::exit(cli::EXIT_USAGE);
        }
    };
    match cli::run(&opts) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
