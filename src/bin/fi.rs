//! `fi` — frequent items from the command line.
//!
//! ```sh
//! fi top -k 10 access.log            # most frequent tokens
//! fi diff -k 10 day1.txt day2.txt    # biggest frequency changes (§4.2)
//! fi iceberg --phi 0.01 access.log   # everything above 1% of traffic
//! cat stream | fi top                # reads stdin when no file given
//! ```

use frequent_items::cli;
use std::io::Read;

fn read_input(path: Option<&String>) -> std::io::Result<String> {
    match path {
        Some(p) => std::fs::read_to_string(p),
        None => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf)?;
            Ok(buf)
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: fi <top|diff|iceberg> [-k N] [-t ROWS] [-b BUCKETS] [--seed S] [--phi P] [--eps E] [FILE...]");
            std::process::exit(2);
        }
    };
    let report = match opts.command.as_str() {
        "top" => {
            let text = read_input(opts.files.first()).unwrap_or_else(|e| {
                eprintln!("error reading input: {e}");
                std::process::exit(1);
            });
            cli::run_top(&opts, &text)
        }
        "diff" => {
            let t1 = std::fs::read_to_string(&opts.files[0]).unwrap_or_else(|e| {
                eprintln!("error reading {}: {e}", opts.files[0]);
                std::process::exit(1);
            });
            let t2 = std::fs::read_to_string(&opts.files[1]).unwrap_or_else(|e| {
                eprintln!("error reading {}: {e}", opts.files[1]);
                std::process::exit(1);
            });
            cli::run_diff(&opts, &t1, &t2)
        }
        "iceberg" => {
            let text = read_input(opts.files.first()).unwrap_or_else(|e| {
                eprintln!("error reading input: {e}");
                std::process::exit(1);
            });
            cli::run_iceberg(&opts, &text)
        }
        _ => unreachable!("parse_args validates the subcommand"),
    };
    print!("{report}");
}
