//! `fi` — frequent items from the command line.
//!
//! ```sh
//! fi top -k 10 access.log            # most frequent tokens
//! fi diff -k 10 day1.txt day2.txt    # biggest frequency changes (§4.2)
//! fi iceberg --phi 0.01 access.log   # everything above 1% of traffic
//! cat stream | fi top                # reads stdin when no file given
//! fi top --snapshot s.csnp log.1     # persist state, then later
//! fi top --resume s.csnp log.2       # continue counting across runs
//! fi top --snapshot s.csnp --snapshot-every 10000 log  # checkpoint as you go
//! fi top --threads 4 access.log      # sharded multi-core ingestion
//! fi inspect s.csnp                  # what's inside a snapshot?
//! fi shard --sites 3 --out-prefix site access.log   # split by key shard
//! fi serve --listen 127.0.0.1:7700 --sites 3 --quorum 2   # coordinator
//! fi ship --to 127.0.0.1:7700 --site-id 0 --sites 3 site.0.txt  # agent
//! fi coordinate site.0.txt site.1.txt site.2.txt    # in-process merge
//! ```
//!
//! Exit codes: 0 success, 2 bad invocation, 3 I/O failure, 4 corrupt
//! input (e.g. a torn or bit-flipped snapshot).

use frequent_items::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: fi <top|diff|iceberg|inspect|serve|ship|coordinate|shard> [-k N] \
                 [-t ROWS] [-b BUCKETS] [--seed S] [--phi P] [--eps E] [--algorithm A] \
                 [--threads N] [--snapshot PATH] [--snapshot-every N] [--resume PATH] \
                 [--listen ADDR] [--to ADDR] [--site-id I] [--sites N] [--quorum Q] \
                 [--deadline-ms MS] [--tick-ms MS] [--timeout-ms MS] [--fault SPEC] \
                 [--fault-seed S] [--out-prefix P] [FILE...]"
            );
            std::process::exit(cli::EXIT_USAGE);
        }
    };
    match cli::run(&opts) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
